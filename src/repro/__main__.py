"""Command-line demo runner: ``python -m repro [demo]``.

Gives the library a zero-setup "does it work?" entry point:

* ``python -m repro``          — the quickstart demo (default)
* ``python -m repro matrix``   — the Fig. 2 / Table 1 mechanism matrix
* ``python -m repro compare``  — FreeFlow vs every baseline, intra+inter
* ``python -m repro trace``    — per-hop latency breakdown per mechanism

Besides the demos there are four tool subcommands:

* ``python -m repro lint``     — simlint static analysis (the rule range
  is derived from the registry; ``--list-rules`` prints it); see
  :mod:`repro.analysis.cli` for flags (``--fail-on-new``, ``--explain``)
* ``python -m repro chaos``    — deterministic fault-injection scenarios
  with invariant verification; see :mod:`repro.chaos.runner` for flags
  (``--smoke``, ``--scenario``, ``--seed``, ``--json``, ``--list``)
* ``python -m repro top``      — live top-talkers / link-utilisation /
  flow-state view over a chaos scenario (default host-crash-storm)
* ``python -m repro report``   — deterministic flight-record artifact
  (JSON-lines) for a synthetic fleet; see :mod:`repro.telemetry.cli`
"""

from __future__ import annotations

import argparse
import sys

from . import ContainerSpec, quickstart_cluster
from .metrics import run_pingpong, run_stream


def demo_quickstart() -> None:
    """Two containers per host; FreeFlow picks shm locally, RDMA across."""
    env, cluster, network = quickstart_cluster(hosts=2)
    for name, host in (("web", "host0"), ("cache", "host0"),
                       ("db", "host1")):
        container = cluster.submit(ContainerSpec(name, pinned_host=host))
        network.attach(container)
        print(f"  {name:6s} on {host}  ip={container.ip}")

    def wire():
        local = yield from network.connect_containers("web", "cache")
        remote = yield from network.connect_containers("web", "db")
        return local, remote

    local, remote = env.run(until=env.process(wire()))
    for label, connection in (("local", local), ("remote", remote)):
        result = run_stream(env, [(connection.a, connection.b)],
                            duration_s=0.02, hosts=list(cluster.hosts))
        latency = run_pingpong(env, connection.a, connection.b, rounds=60)
        print(f"  {label:6s} -> {connection.mechanism.value.upper():4s}  "
              f"{result.gbps:6.1f} Gb/s  {latency.mean_us():5.2f} us  "
              f"CPU {result.total_cpu_percent:4.0f} %")


def demo_matrix() -> None:
    """The deployment-case mechanism matrix (paper Fig. 2 + Table 1)."""
    from .cluster import ClusterOrchestrator
    from .core import FreeFlowNetwork
    from .hardware import Fabric, Host, NO_RDMA_TESTBED, VirtualMachine
    from .sim import Environment

    cases = {
        "(a) same host": ("h1", "h1", False),
        "(b) two hosts": ("h1", "h2", False),
        "(c) same VM": ("vm0", "vm0", True),
        "(d) VMs, two hosts": ("vm0", "vm1", True),
    }
    constraints = ("none", "w/o trust", "w/o RDMA NIC")
    print(f"  {'case':20s}" + "".join(f"{c:>14s}" for c in constraints))
    for case, (loc_a, loc_b, with_vms) in cases.items():
        cells = []
        for constraint in constraints:
            env = Environment()
            fabric = Fabric(env)
            spec = NO_RDMA_TESTBED if constraint == "w/o RDMA NIC" else None
            cluster = ClusterOrchestrator(env)
            h1 = Host(env, "h1", spec=spec, fabric=fabric)
            h2 = Host(env, "h2", spec=spec, fabric=fabric)
            cluster.add_host(h1)
            cluster.add_host(h2)
            if with_vms:
                cluster.add_vm(VirtualMachine(h1, "vm0"))
                if case.startswith("(d)"):
                    cluster.add_vm(VirtualMachine(h2, "vm1"))
            tenants = (("blue", "red") if constraint == "w/o trust"
                       else ("t", "t"))
            network = FreeFlowNetwork(cluster)
            for name, tenant, loc in (("a", tenants[0], loc_a),
                                      ("b", tenants[1], loc_b)):
                container = cluster.submit(
                    ContainerSpec(name, tenant=tenant, pinned_host=loc)
                )
                network.attach(container)

            def wire():
                connection = yield from network.connect_containers("a", "b")
                return connection

            connection = env.run(until=env.process(wire()))
            cells.append(connection.mechanism.value)
        print(f"  {case:20s}" + "".join(f"{c:>14s}" for c in cells))


def demo_compare() -> None:
    """FreeFlow vs every baseline (the paper's E10 headline table)."""
    from .baselines import (
        BridgeModeNetwork,
        HostModeNetwork,
        OverlayModeNetwork,
        RawRdmaNetwork,
        ShmIpcNetwork,
    )

    for intra in (True, False):
        where = "intra-host" if intra else "inter-host"
        print(f"  -- {where} --")
        for kind in ("freeflow", "shm-ipc", "rdma", "host", "bridge",
                     "overlay"):
            if kind == "shm-ipc" and not intra:
                continue
            env, cluster, network = quickstart_cluster(hosts=2)
            hosts = list(cluster.hosts)
            a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
            b = cluster.submit(ContainerSpec(
                "b", pinned_host="host0" if intra else "host1"
            ))
            network.attach(a)
            network.attach(b)
            if kind == "freeflow":
                def wire():
                    connection = yield from network.connect_containers(
                        "a", "b"
                    )
                    return connection

                channel = env.run(until=env.process(wire()))
            elif kind == "shm-ipc":
                channel = ShmIpcNetwork().connect(a, b)
            elif kind == "rdma":
                channel = RawRdmaNetwork().connect(a, b)
            elif kind == "host":
                channel = HostModeNetwork(env).connect(a, b, 1, 2)
            elif kind == "bridge":
                channel = BridgeModeNetwork(env).connect(a, b)
            else:
                channel = OverlayModeNetwork(env).connect(a, b)
            result = run_stream(env, [(channel.a, channel.b)],
                                duration_s=0.02, hosts=hosts)
            print(f"  {kind:9s} {result.gbps:6.1f} Gb/s  "
                  f"CPU {result.total_cpu_percent:4.0f} %")


def demo_trace() -> None:
    """Where does each mechanism's latency go?  (telemetry tentpole)

    Runs a traced ping-pong over shared memory, RDMA and kernel TCP and
    prints the tracer's per-hop breakdown next to the harness's measured
    latency — the segment means sum to the end-to-end mean exactly, so
    the two numbers must agree (CI checks within 1%).
    """
    from . import telemetry
    from .hardware import Fabric, Host
    from .sim import Environment
    from .telemetry import export
    from .transports import RdmaChannel, ShmChannel, TcpFallbackChannel

    def mk_shm(env):
        return ShmChannel(Host(env, "h0"))

    def mk_rdma(env):
        fabric = Fabric(env)
        return RdmaChannel(Host(env, "a", fabric=fabric),
                           Host(env, "b", fabric=fabric))

    def mk_tcp(env):
        fabric = Fabric(env)
        return TcpFallbackChannel(Host(env, "a", fabric=fabric),
                                  Host(env, "b", fabric=fabric))

    for label, make in (("shm", mk_shm), ("rdma", mk_rdma),
                        ("kernel-tcp", mk_tcp)):
        env = Environment()
        channel = make(env)
        with telemetry.session(sample_rate=1.0) as handle:
            result = run_pingpong(env, channel.a, channel.b,
                                  rounds=100, warmup_rounds=0)
            aggregate = handle.tracer.breakdown()
        measured = result.latencies.mean()
        traced = aggregate["mean_total_s"]
        error = abs(traced - measured) / measured if measured else 0.0
        print(export.format_breakdown(aggregate, label=label))
        print(f"  harness one-way mean: {measured * 1e6:.3f} us  "
              f"(trace vs harness: {error * 100:.3f}% apart)")
        if error > 0.01:
            raise SystemExit(
                f"trace/harness mismatch for {label}: {error * 100:.2f}%"
            )
        print()
    print("  all mechanisms: segment sums match end-to-end latency (<1%)")


def demo_flows() -> None:
    """Flow lifecycle + watch-driven reconciler (control-plane tentpole).

    Starts the FlowReconciler, streams traffic over two flows, then hits
    the control plane with the three events it watches for — an external
    relocate, a runtime NIC-capability change, and a host failure with
    replacement containers — and shows every flow converging without any
    caller invoking rebind/repair directly.  Exits non-zero if a message
    is lost across the rebinds (CI runs this as a smoke test).
    """
    from . import telemetry
    from .errors import ConnectionReset
    from .telemetry.events import FLOW_TRANSITION

    env, cluster, network = quickstart_cluster(hosts=3)
    with telemetry.session() as handle:
        network.reconciler.start()
        for name, host in (("web", "host0"), ("cache", "host0"),
                           ("db", "host1")):
            container = cluster.submit(ContainerSpec(name, pinned_host=host))
            network.attach(container)
            print(f"  {name:6s} on {host}  ip={container.ip}")

        def wire():
            local = yield from network.connect_containers("web", "cache")
            remote = yield from network.connect_containers("web", "db")
            return {"web->cache": local, "web->db": remote}

        flows = env.run(until=env.process(wire()))
        counters = {label: {"sent": 0, "received": 0} for label in flows}
        stop = {"v": False}

        def sender(label, flow):
            while not stop["v"]:
                try:
                    yield from flow.a.send(4096)
                except ConnectionReset:
                    return
                counters[label]["sent"] += 1
                yield env.timeout(20e-6)

        def receiver(label, flow):
            while True:
                try:
                    yield from flow.b.recv()
                except ConnectionReset:
                    return
                counters[label]["received"] += 1

        for label, flow in flows.items():
            env.process(sender(label, flow))
            env.process(receiver(label, flow))

        def scenario():
            yield env.timeout(0.002)
            print("  [1] external relocate: cache host0 -> host1")
            cluster.relocate("cache", "host1")
            network.orchestrator.refresh_location("cache")
            yield from network.reconciler.wait_settled("cache")
            flow = flows["web->cache"]
            print(f"      web->cache now {flow.mechanism.value} "
                  f"(gen {flow.generation}, {flow.state.value})")

            yield env.timeout(0.002)
            print("  [2] registry change: host1 loses RDMA")
            network.orchestrator.set_nic_capability("host1", rdma=False)
            yield from network.reconciler.wait_settled()
            for label, flow in flows.items():
                print(f"      {label:10s} {flow.mechanism.value:5s} "
                      f"[{flow.state.value}]")

            # Quiesce traffic so the loss check below is exact.
            yield env.timeout(0.002)
            stop["v"] = True
            yield from network.reconciler.drain(list(flows.values()))

            print("  [3] host1 fails; replacements attach -> auto-repair")
            broken = network.handle_host_failure("host1")
            print(f"      flows broken: {len(broken)}")
            for name in ("cache", "db"):
                replacement = cluster.submit(
                    ContainerSpec(name, pinned_host="host2")
                )
                network.attach(replacement)
            yield from network.reconciler.wait_settled()
            for label, flow in flows.items():
                print(f"      {label:10s} {flow.mechanism.value:5s} "
                      f"[{flow.state.value}] gen {flow.generation}")

            # Prove the repaired channels carry traffic.
            for label, flow in flows.items():
                yield from flow.a.send(4096)
                counters[label]["sent"] += 1
                yield from flow.b.recv()
                counters[label]["received"] += 1

        env.run(until=env.process(scenario()))
        transitions = handle.events.of_kind(FLOW_TRANSITION)
        history = [e.fields["new"] for e in transitions
                   if e.fields["flow"] == flows["web->db"].flow_id]
        print(f"  web->db lifecycle: {' -> '.join(history)}")
        print(f"  reconciler: {network.reconciler.rebinds} rebinds, "
              f"{network.reconciler.repairs} repairs, "
              f"{len(transitions)} transitions logged")

    lost = 0
    for label, c in counters.items():
        print(f"  {label:10s} sent={c['sent']:4d} received={c['received']:4d}")
        lost += c["sent"] - c["received"]
    if lost:
        raise SystemExit(f"message conservation violated: {lost} lost")
    print("  message conservation holds across every rebind")


DEMOS = {
    "quickstart": demo_quickstart,
    "matrix": demo_matrix,
    "compare": demo_compare,
    "trace": demo_trace,
    "flows": demo_flows,
}


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "lint":
        # Tool subcommand with its own flag namespace; dispatched before
        # the demo parser so `lint --fail-on-new` is not read as a demo.
        from .analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "chaos":
        from .chaos.runner import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "top":
        from .telemetry.cli import top_main

        return top_main(argv[1:])
    if argv and argv[0] == "report":
        from .telemetry.cli import report_main

        return report_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FreeFlow (HotNets'16) reproduction demos "
                    "(plus the 'lint' and 'chaos' tool subcommands)",
    )
    parser.add_argument("demo", nargs="?", default="quickstart",
                        choices=sorted(DEMOS))
    args = parser.parse_args(argv)
    print(f"[repro] running demo: {args.demo}")
    DEMOS[args.demo]()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Workload generators (S13): the traffic shapes behind every figure.

Streaming and ping-pong (the paper's two microbenchmarks) live in
:mod:`repro.metrics`; this module adds the richer shapes used by the
multi-pair sweeps and the application examples:

* :class:`MessageSizeSweep` — log-spaced message sizes for latency and
  throughput curves;
* :class:`MultiPairStream` — N concurrent pairs over a connect factory,
  for the "throughput vs number of pairs" figures (E5/E6);
* :class:`RequestResponse` — open-loop Poisson request arrivals with a
  response per request, for the KV-style application workloads;
* :class:`HeavyTailedStream` — bounded-Pareto message sizes, the classic
  datacenter mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from ..sim.monitor import Series
from ..sim.rand import RandomStream

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment

__all__ = [
    "MessageSizeSweep",
    "MultiPairStream",
    "RequestResponse",
    "HeavyTailedStream",
]


@dataclass(frozen=True)
class MessageSizeSweep:
    """Log-spaced message sizes, e.g. 64 B … 4 MB (powers of ``factor``)."""

    minimum: int = 64
    maximum: int = 4 * 1024 * 1024
    factor: int = 4

    def sizes(self) -> list[int]:
        if self.minimum <= 0 or self.maximum < self.minimum:
            raise ValueError("bad sweep bounds")
        if self.factor < 2:
            raise ValueError("factor must be at least 2")
        sizes = []
        size = self.minimum
        while size <= self.maximum:
            sizes.append(size)
            size *= self.factor
        if sizes[-1] != self.maximum:
            sizes.append(self.maximum)
        return sizes


class MultiPairStream:
    """N concurrent streaming pairs built from a connect factory.

    ``connect(i)`` must return an object with ``a``/``b`` endpoint
    attributes (any channel/connection in this library qualifies).
    """

    def __init__(
        self,
        env: "Environment",
        connect: Callable[[int], object],
        pairs: int,
    ) -> None:
        if pairs <= 0:
            raise ValueError(f"pairs must be positive, got {pairs}")
        self.env = env
        self.channels = [connect(i) for i in range(pairs)]

    def endpoint_pairs(self) -> list[tuple]:
        return [(ch.a, ch.b) for ch in self.channels]


class RequestResponse:
    """Open-loop request/response client against a server endpoint.

    Requests arrive Poisson at ``rate_per_s``; each request of
    ``request_bytes`` gets a ``response_bytes`` reply.  Records
    end-to-end response times.
    """

    def __init__(
        self,
        env: "Environment",
        client_end,
        server_end,
        rate_per_s: float,
        request_bytes: int = 512,
        response_bytes: int = 4096,
        rng: Optional[RandomStream] = None,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        self.env = env
        self.client_end = client_end
        self.server_end = server_end
        self.rate = rate_per_s
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.rng = rng or RandomStream(0, "reqresp")
        self.response_times = Series()
        self.completed = 0

    def run(self, duration_s: float):
        """Generator: drive the workload for ``duration_s``."""
        self.env.process(self._server())
        stop_at = self.env.now + duration_s
        inflight = []
        while self.env.now < stop_at:
            yield self.env.timeout(self.rng.expovariate(self.rate))
            inflight.append(self.env.process(self._one_request()))
        for request in inflight:
            yield request

    def _one_request(self):
        started = self.env.now
        yield from self.client_end.send(self.request_bytes)
        yield from self.client_end.recv()
        self.response_times.add(self.env.now - started)
        self.completed += 1

    def _server(self):
        while True:
            yield from self.server_end.recv()
            yield from self.server_end.send(self.response_bytes)


class HeavyTailedStream:
    """Sender pushing bounded-Pareto-sized messages (DC traffic mix)."""

    def __init__(
        self,
        env: "Environment",
        send_end,
        recv_end,
        shape: float = 1.2,
        min_bytes: int = 256,
        max_bytes: int = 4 * 1024 * 1024,
        rng: Optional[RandomStream] = None,
    ) -> None:
        self.env = env
        self.send_end = send_end
        self.recv_end = recv_end
        self.shape = shape
        self.min_bytes = min_bytes
        self.max_bytes = max_bytes
        self.rng = rng or RandomStream(0, "heavytail")
        self.bytes_delivered = 0
        self.messages_delivered = 0

    def run(self, duration_s: float):
        """Generator: stream for ``duration_s`` and count deliveries."""
        stop_at = self.env.now + duration_s

        def sender():
            while self.env.now < stop_at:
                size = int(self.rng.pareto_size(
                    self.shape, self.min_bytes, self.max_bytes
                ))
                yield from self.send_end.send(size)

        def receiver():
            while True:
                message = yield from self.recv_end.recv()
                self.bytes_delivered += message.size_bytes
                self.messages_delivered += 1

        self.env.process(sender())
        self.env.process(receiver())
        yield self.env.timeout(duration_s)

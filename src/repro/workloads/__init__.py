"""Workload generators and application models (S13)."""

from .apps import KeyValueStoreApp, KvClient, ParameterServerApp
from .traffic import (
    HeavyTailedStream,
    MessageSizeSweep,
    MultiPairStream,
    RequestResponse,
)

__all__ = [
    "HeavyTailedStream",
    "KeyValueStoreApp",
    "KvClient",
    "MessageSizeSweep",
    "MultiPairStream",
    "ParameterServerApp",
    "RequestResponse",
]

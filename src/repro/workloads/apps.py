"""Containerized application models (paper §1's motivating workloads).

The intro motivates FreeFlow with "big data analytics, key-value stores,
machine learning" — distributed apps whose tiers are containers.  Two of
them are modelled end-to-end on the public API:

* :class:`KeyValueStoreApp` — a KV server container serving GET/PUT over
  FreeFlow sockets, with Zipf-popular keys (the FaRM/Cassandra shape);
* :class:`ParameterServerApp` — synchronous data-parallel training:
  workers compute, then allreduce gradients over FreeFlow MPI.

Both are used by the examples and by the application-level benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..core.mpi import Communicator
from ..core.sockets import SocketLayer
from ..sim.monitor import Series
from ..sim.rand import RandomStream

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.container import Container
    from ..core.network import FreeFlowNetwork
    from ..sim.scheduler import Environment

__all__ = ["KeyValueStoreApp", "ParameterServerApp"]

_GET_HEADER = 64
_PUT_ACK = 16


class KeyValueStoreApp:
    """An in-memory KV store served over FreeFlow sockets."""

    def __init__(
        self,
        network: "FreeFlowNetwork",
        server: "Container",
        port: int = 6379,
        value_bytes: int = 4096,
        keys: int = 1024,
        zipf_skew: float = 0.99,
    ) -> None:
        self.network = network
        self.env: "Environment" = network.env
        self.server = server
        self.port = port
        self.value_bytes = value_bytes
        self.keys = keys
        self.zipf_skew = zipf_skew
        self.layer = SocketLayer(network)
        self.store: dict[int, str] = {}
        self.gets_served = 0
        self.puts_served = 0
        self.get_latencies = Series()
        self._listener = self.layer.listen(server, port)
        self.env.process(self._accept_loop())

    # -- server side ---------------------------------------------------------------

    def _accept_loop(self):
        while True:
            sock = yield from self._listener.accept()
            self.env.process(self._serve(sock))

    def _serve(self, sock):
        while True:
            __, request = yield from sock.recv()
            if request is None:
                continue
            op, key, value = request
            if op == "GET":
                data = self.store.get(key, "")
                yield from sock.send(
                    max(1, self.value_bytes), payload=("VAL", key, data)
                )
                self.gets_served += 1
            elif op == "PUT":
                self.store[key] = value
                yield from sock.send(_PUT_ACK, payload=("OK", key, None))
                self.puts_served += 1
            elif op == "QUIT":
                return

    # -- client side -----------------------------------------------------------------

    def client(self, container: "Container"):
        """Generator: returns a connected :class:`KvClient`."""
        sock = self.layer.socket(container)
        yield from sock.connect(self.server.ip, self.port)
        return KvClient(self, sock)


class KvClient:
    """One client connection to a :class:`KeyValueStoreApp`."""

    def __init__(self, app: KeyValueStoreApp, sock) -> None:
        self.app = app
        self.sock = sock
        self.env = app.env
        self.rng = RandomStream(0, f"kv-{id(self)}")

    def put(self, key: int, value: str):
        """Generator: PUT one key."""
        yield from self.sock.send(
            _GET_HEADER + self.app.value_bytes, payload=("PUT", key, value)
        )
        yield from self.sock.recv()

    def get(self, key: int):
        """Generator: GET one key; returns the value."""
        started = self.env.now
        yield from self.sock.send(_GET_HEADER, payload=("GET", key, None))
        __, reply = yield from self.sock.recv()
        self.app.get_latencies.add(self.env.now - started)
        return reply[2] if reply is not None else None

    def random_get(self):
        """Generator: GET a Zipf-popular key."""
        key = self.rng.zipf_index(self.app.keys, self.app.zipf_skew)
        value = yield from self.get(key)
        return value

    def close(self):
        """Generator: tell the server this session is over."""
        yield from self.sock.send(16, payload=("QUIT", 0, None))
        self.sock.close()


@dataclass
class TrainingStats:
    """Per-experiment outcome of a parameter-server run."""

    steps: int = 0
    step_times: Series = field(default_factory=Series)
    final_values: dict = field(default_factory=dict)


class ParameterServerApp:
    """Synchronous data-parallel training over FreeFlow MPI.

    Each step: every worker "computes" for ``compute_s`` (pure delay —
    GPU work does not contend for host network CPU), then the gradient
    of ``gradient_bytes`` is allreduced.  Network quality directly sets
    the step time, which is why container networking matters for ML.
    """

    def __init__(
        self,
        network: "FreeFlowNetwork",
        workers: list["Container"],
        gradient_bytes: int = 16 * 1024 * 1024,
        compute_s: float = 5e-3,
    ) -> None:
        if len(workers) < 2:
            raise ValueError("training needs at least two workers")
        self.env: "Environment" = network.env
        self.comm = Communicator(network, workers)
        self.gradient_bytes = gradient_bytes
        self.compute_s = compute_s
        self.stats = TrainingStats()

    def run(self, steps: int):
        """Generator: run ``steps`` synchronous training steps."""
        if steps <= 0:
            raise ValueError("steps must be positive")

        def worker(rank: int):
            endpoint = self.comm.endpoint(rank)
            gradient = float(rank + 1)
            for __ in range(steps):
                yield self.env.timeout(self.compute_s)
                gradient = yield from endpoint.allreduce(
                    gradient, self.gradient_bytes
                )
                gradient /= self.comm.size
            self.stats.final_values[rank] = gradient

        started = self.env.now
        procs = [
            self.env.process(worker(rank)) for rank in range(self.comm.size)
        ]
        for proc in procs:
            yield proc
        self.stats.steps = steps
        self.stats.step_times.add((self.env.now - started) / steps)

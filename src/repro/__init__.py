"""repro — a full reproduction of *FreeFlow: High Performance Container
Networking* (HotNets 2016) on a simulated testbed.

The public API mirrors the paper's architecture:

* :mod:`repro.sim` — discrete-event engine everything runs on;
* :mod:`repro.hardware` — hosts, NICs, memory buses (the testbed);
* :mod:`repro.netstack` — kernel TCP, bridges, overlay routers (what
  FreeFlow replaces);
* :mod:`repro.transports` — shm / RDMA / DPDK / TCP mechanism channels;
* :mod:`repro.cluster` — the Mesos/Kubernetes-like cluster orchestrator;
* :mod:`repro.core` — FreeFlow itself: network orchestrator, agents,
  vNICs, verbs, socket/MPI translations, live migration;
* :mod:`repro.baselines` — host/bridge/overlay/raw-RDMA/shm-IPC/NetVM;
* :mod:`repro.workloads`, :mod:`repro.metrics` — experiment harness.

Quickstart::

    from repro import quickstart_cluster
    env, cluster, net = quickstart_cluster(hosts=2)
"""

import os

from .cluster import ClusterOrchestrator, ContainerSpec
from .core import FreeFlowNetwork
from .hardware import Fabric, Host, PAPER_TESTBED
from .sim import Environment

__version__ = "0.1.0"

__all__ = [
    "ClusterOrchestrator",
    "ContainerSpec",
    "Environment",
    "Fabric",
    "FreeFlowNetwork",
    "Host",
    "PAPER_TESTBED",
    "quickstart_cluster",
    "__version__",
]


def quickstart_cluster(hosts: int = 2, spec=None, fat_tree_k=None,
                       flowlet_gap_s=None, **network_kwargs):
    """One-call testbed: an environment, ``hosts`` hosts on a fabric, a
    cluster orchestrator and a FreeFlow network.

    With ``fat_tree_k`` set, the hosts attach to a k-ary fat-tree
    (:class:`~repro.hardware.FatTreeFabric`) with ECMP + flowlet
    multi-path routing instead of the single non-blocking switch;
    ``flowlet_gap_s`` tunes the flowlet idle threshold
    (``float('inf')`` pins paths: plain ECMP).

    Returns ``(env, cluster, network)``.
    """
    if hosts <= 0:
        raise ValueError(f"hosts must be positive, got {hosts}")
    env = Environment()
    if fat_tree_k is not None:
        from .hardware import FatTreeFabric

        fabric = FatTreeFabric(env, k=fat_tree_k,
                               flowlet_gap_s=flowlet_gap_s)
    else:
        fabric = Fabric(env)
    cluster = ClusterOrchestrator(env)
    for index in range(hosts):
        cluster.add_host(Host(env, f"host{index}", spec=spec, fabric=fabric))
    network = FreeFlowNetwork(cluster, **network_kwargs)
    return env, cluster, network


# -- opt-in runtime sanitizer ------------------------------------------------
# REPRO_SANITIZE=1 arms the dynamic invariant checks (past-scheduled
# events, clock monotonicity, transplant conservation, FlowTable-only
# transitions) for the whole process; see repro.analysis.sanitizer.
# Checked here, at import time, so `REPRO_SANITIZE=1 python -m pytest`
# and the demos need no code changes to run sanitized.
if os.environ.get("REPRO_SANITIZE"):
    from .analysis.sanitizer import install as _sanitizer_install

    _sanitizer_install()

# REPRO_WAITFOR=1 arms the runtime wait-for graph (park tracking, lock
# deadlock cycles raised at park time, tank ownership ledgers, idle
# ownership reports); see repro.analysis.waitfor.  Independent of
# REPRO_SANITIZE — either, both (any order), or neither.
if os.environ.get("REPRO_WAITFOR"):
    from .analysis.waitfor import install as _waitfor_install

    _waitfor_install()

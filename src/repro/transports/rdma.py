"""RDMA data path: kernel-bypass messaging between (or within) hosts.

The host CPU only *posts* work requests; the NIC engine does the rest —
DMA the payload out of host memory, serialise it onto the wire, and on
the far side DMA it into the destination buffer.  That is why the RDMA
columns of the paper's motivation figures show 40 Gb/s (link-bound) at
near-zero CPU.

Loopback is modelled faithfully to the paper's observation that
*intra-host* RDMA still tops out at 40 Gb/s: the payload hairpins through
the NIC (engine + wire-rate internal path), so RDMA is **not** the right
intra-host mechanism — shared memory is.  This asymmetry is the heart of
FreeFlow's policy.

Ordering: one lane models one reliable connection; the NIC services its
send queue in order, and per-message DMA/wire phases are overlapped
(cut-through) by taking ``max(dma, wire)`` as the occupancy of the
pipeline head.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from ..errors import TransportUnavailable
from ..sim.resources import Store, Tank
from .base import DuplexChannel, Lane, Mechanism

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host
    from ..netstack.packet import Message

__all__ = ["RdmaLane", "RdmaChannel"]


class RdmaLane(Lane):
    """One direction of a reliable RDMA connection (one queue pair)."""

    __slots__ = ("src_host", "dst_host", "window", "_sq", "_rx")

    def __init__(
        self,
        src_host: "Host",
        dst_host: "Host",
        window_bytes: int = 8 * 1024 * 1024,
    ) -> None:
        super().__init__(src_host.env, Mechanism.RDMA)
        if not src_host.nic.rdma_capable:
            raise TransportUnavailable(f"{src_host.name} has no RDMA NIC")
        if not dst_host.nic.rdma_capable:
            raise TransportUnavailable(f"{dst_host.name} has no RDMA NIC")
        self.src_host = src_host
        self.dst_host = dst_host
        self.window = Tank(src_host.env, capacity=window_bytes)
        self._sq: Store = Store(src_host.env)
        self._rx: Store = Store(src_host.env)
        src_host.env.process(self._nic_tx_worker())
        src_host.env.process(self._nic_rx_worker())

    @property
    def loopback(self) -> bool:
        return self.src_host is self.dst_host

    # -- host-side API ------------------------------------------------------------

    def send(self, nbytes: int, payload: Any = None):
        """Post one message; returns once it sits in the send queue."""
        if self.closed:
            raise TransportUnavailable("RDMA connection closed")
        message = self.make_message(nbytes, payload)
        trace = self._trace_of(message)
        mark = self.env.now
        yield from self.src_host.cpu.execute(self.src_host.nic.spec.rdma_post_cycles)
        if trace is not None:
            trace.add("post", mark, self.env.now)
            mark = self.env.now
        yield self.window.put(max(1, nbytes))
        if trace is not None:
            trace.add("queue", mark, self.env.now)
        self._sq.put(message)
        return message

    def recv(self):
        """Blocking receive; frees the flow-control window."""
        message = yield self.inbox.get()
        trace = self._trace_of(message)
        mark = self.env.now
        yield from self.dst_host.cpu.execute(
            self.dst_host.nic.spec.rdma_poll_cycles
        )
        yield self.window.get(max(1, message.size_bytes))
        if trace is not None:
            trace.add("consume", mark, self.env.now)
        self._finish_trace(message)
        return message

    # -- NIC pipeline -----------------------------------------------------------------

    def _nic_tx_worker(self):
        """The source NIC servicing this queue pair, in order."""
        nic = self.src_host.nic
        while True:
            message = yield self._sq.get()
            trace = self._trace_of(message)
            mark = self.env.now
            yield from nic.engine_service(message.size_bytes)
            yield self.env.timeout(nic.spec.dma_latency_s)
            if trace is not None:
                trace.add("nic", mark, self.env.now)
                # Close the wire span when the payload actually lands on
                # the far NIC (the deliver callback), not when the
                # overlapped DMA/wire barrier below resolves.
                message.meta["wire_start"] = self.env.now
            yield from self._dma_and_wire(message)

    def _dma_and_wire(self, message: "Message"):
        """Overlap host-memory DMA with wire serialisation (cut-through)."""
        dma_done = self.env.process(self._dma(self.src_host, message.size_bytes))
        wire = self.src_host.nic.spec.rdma_wire_bytes(message.size_bytes)
        if self.loopback:
            # Hairpin through the NIC's internal path at wire rate.
            wire_done = self.env.process(
                self._loopback_wire(wire, lambda: self._remote_rx(message))
            )
        else:
            fabric = self.src_host.fabric
            if fabric is None:
                raise TransportUnavailable(
                    f"{self.src_host.name} is not attached to a fabric"
                )
            wire_done = self.env.process(
                self._fabric_wire(fabric, wire, lambda: self._remote_rx(message))
            )
        yield self.env.all_of([dma_done, wire_done])

    def _dma(self, host: "Host", nbytes: int):
        yield from host.dma(nbytes)

    def _loopback_wire(self, wire_bytes: int, deliver: Callable[[], None]):
        yield from self.src_host.nic.egress.transfer(wire_bytes)
        deliver()

    def _fabric_wire(self, fabric, wire_bytes: int, deliver: Callable[[], None]):
        yield from fabric.send(
            self.src_host.nic, self.dst_host.nic, wire_bytes, deliver=deliver
        )

    def _remote_rx(self, message: "Message") -> None:
        trace = self._trace_of(message)
        if trace is not None:
            start = message.meta.pop("wire_start", None)
            if start is not None:
                trace.add("wire", start, self.env.now)
        self._rx.put(message)

    def _nic_rx_worker(self):
        """The destination NIC landing inbound messages into memory."""
        nic = self.dst_host.nic
        while True:
            message = yield self._rx.get()
            trace = self._trace_of(message)
            mark = self.env.now
            yield from nic.engine_service(message.size_bytes)
            yield self.env.timeout(nic.spec.dma_latency_s)
            yield from self.dst_host.dma(message.size_bytes)
            if trace is not None:
                trace.add("nic", mark, self.env.now)
            self.deliver(message)


class RdmaChannel(DuplexChannel):
    """Bidirectional RDMA connection between two hosts (or loopback)."""

    def __init__(
        self,
        a_host: "Host",
        b_host: "Host",
        window_bytes: int = 8 * 1024 * 1024,
    ) -> None:
        super().__init__(
            RdmaLane(a_host, b_host, window_bytes),
            RdmaLane(b_host, a_host, window_bytes),
        )
        self.a_host = a_host
        self.b_host = b_host

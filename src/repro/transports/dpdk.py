"""DPDK userspace transport: kernel bypass without RDMA hardware.

A poll-mode driver (PMD) thread spins on a dedicated core per host and
moves packets between application rings and the NIC with one copy and no
syscalls.  Compared with RDMA the host CPU still touches every byte, but
the kernel's per-packet costs vanish:

* a single PMD core at 0.30 cycles/byte pushes ≈ 8 GB/s (64 Gb/s), so a
  40 Gb/s link stays the bottleneck — the paper lists DPDK alongside RDMA
  as an inter-host option for exactly this reason;
* the price is a permanently busy core (the ``dedicate()`` claim), which
  shows up honestly in the CPU-utilisation benches.

One :class:`DpdkEngine` exists per host and is shared by every DPDK lane
on it; its single PMD worker is the serialisation point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..errors import TransportUnavailable
from ..hardware.specs import DpdkSpec
from ..netstack.packet import segment_count
from ..sim.resources import Store, Tank
from .base import DuplexChannel, Lane, Mechanism

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host
    from ..netstack.packet import Message

__all__ = ["DpdkEngine", "DpdkLane", "DpdkChannel"]


class DpdkEngine:
    """The per-host PMD: one dedicated core polling TX and RX rings."""

    _BY_HOST: dict[int, "DpdkEngine"] = {}

    def __init__(self, host: "Host", spec: Optional[DpdkSpec] = None) -> None:
        if not host.nic.dpdk_capable:
            raise TransportUnavailable(f"{host.name}'s NIC has no DPDK driver")
        self.env = host.env
        self.host = host
        self.spec = spec or host.spec.dpdk
        self._work: Store = Store(host.env)
        self._core = host.cpu.dedicate()
        self.packets_polled = 0
        host.env.process(self._pmd_loop())

    @classmethod
    def on_host(cls, host: "Host") -> "DpdkEngine":
        """Get (or start) the PMD for ``host`` — one engine per host."""
        key = id(host)
        if key not in cls._BY_HOST or cls._BY_HOST[key].host is not host:
            cls._BY_HOST[key] = cls(host)
        return cls._BY_HOST[key]

    def service_seconds(self, nbytes: int) -> float:
        """PMD time to process one message (copy + per-packet work)."""
        packets = segment_count(nbytes, self.host.spec.kernel.mtu_bytes)
        cycles = nbytes * self.spec.cycles_per_byte + packets * self.spec.per_packet_cycles
        return self.host.cpu.seconds_for(cycles)

    def submit(self, message: "Message", next_step) -> None:
        """Queue one message for PMD processing; ``next_step()`` runs after."""
        self._work.put((message, next_step))

    def _pmd_loop(self):
        while True:
            message, next_step = yield self._work.get()
            # The PMD core is already dedicated (permanently busy), so the
            # service time is pure delay — no extra core acquisition.
            yield self.env.timeout(self.spec.poll_latency_s)
            yield self.env.timeout(self.service_seconds(message.size_bytes))
            self.packets_polled += segment_count(
                message.size_bytes, self.host.spec.kernel.mtu_bytes
            )
            next_step()

    def shutdown(self) -> None:
        """Release the dedicated core (end of experiment)."""
        self._core.release()
        self._BY_HOST.pop(id(self.host), None)


class DpdkLane(Lane):
    """One direction of a DPDK channel between two hosts (or loopback)."""

    __slots__ = ("src_host", "dst_host", "src_engine", "dst_engine", "window", "_wire_queue")

    def __init__(
        self,
        src_host: "Host",
        dst_host: "Host",
        window_bytes: int = 8 * 1024 * 1024,
    ) -> None:
        super().__init__(src_host.env, Mechanism.DPDK)
        self.src_host = src_host
        self.dst_host = dst_host
        self.src_engine = DpdkEngine.on_host(src_host)
        self.dst_engine = DpdkEngine.on_host(dst_host)
        self.window = Tank(src_host.env, capacity=window_bytes)
        self._wire_queue: Store = Store(src_host.env)
        if not self.loopback:
            src_host.env.process(self._wire_worker())

    @property
    def loopback(self) -> bool:
        return self.src_host is self.dst_host

    def send(self, nbytes: int, payload: Any = None):
        """Enqueue into the PMD TX ring (cheap; no syscall)."""
        if self.closed:
            raise TransportUnavailable("DPDK channel closed")
        message = self.make_message(nbytes, payload)
        trace = self._trace_of(message)
        mark = self.env.now
        yield from self.src_host.cpu.execute(150.0)  # lockless ring enqueue
        if trace is not None:
            trace.add("post", mark, self.env.now)
            mark = self.env.now
        yield self.window.put(max(1, nbytes))
        if trace is not None:
            trace.add("queue", mark, self.env.now)
            message.meta["nic_start"] = self.env.now
        self.src_engine.submit(message, lambda m=message: self._after_tx(m))
        return message

    def _close_span(self, message: "Message", name: str, key: str) -> None:
        """Close a span opened in ``message.meta`` by an earlier stage."""
        trace = self._trace_of(message)
        if trace is not None:
            start = message.meta.pop(key, None)
            if start is not None:
                trace.add(name, start, self.env.now)

    def _after_tx(self, message: "Message") -> None:
        """TX PMD finished the copy: put the message on the wire."""
        self._close_span(message, "nic", "nic_start")
        if self.loopback:
            if self._trace_of(message) is not None:
                message.meta["nic_start"] = self.env.now
            self.dst_engine.submit(message, lambda m=message: self._rx_landed(m))
            return
        self._wire_queue.put(message)

    def _wire_worker(self):
        """Serialises this lane's messages onto the wire, in order."""
        while True:
            message = yield self._wire_queue.get()
            fabric = self.src_host.fabric
            if fabric is None:
                raise TransportUnavailable(
                    f"{self.src_host.name} is not attached to a fabric"
                )
            wire = self.src_host.spec.kernel.wire_bytes(message.size_bytes)
            if self._trace_of(message) is not None:
                message.meta["wire_start"] = self.env.now
            yield from fabric.send(
                self.src_host.nic,
                self.dst_host.nic,
                wire,
                deliver=lambda m=message: self._off_wire(m),
            )

    def _off_wire(self, message: "Message") -> None:
        """The wire delivered into the destination PMD's RX ring."""
        self._close_span(message, "wire", "wire_start")
        if self._trace_of(message) is not None:
            message.meta["nic_start"] = self.env.now
        self.dst_engine.submit(message, lambda m=message: self._rx_landed(m))

    def _rx_landed(self, message: "Message") -> None:
        """RX PMD copied the message into the application ring."""
        self._close_span(message, "nic", "nic_start")
        self.deliver(message)

    def recv(self):
        message = yield self.inbox.get()
        trace = self._trace_of(message)
        mark = self.env.now
        yield from self.dst_host.cpu.execute(150.0)  # ring dequeue
        yield self.window.get(max(1, message.size_bytes))
        if trace is not None:
            trace.add("consume", mark, self.env.now)
        self._finish_trace(message)
        return message


class DpdkChannel(DuplexChannel):
    """Bidirectional DPDK channel."""

    def __init__(
        self,
        a_host: "Host",
        b_host: "Host",
        window_bytes: int = 8 * 1024 * 1024,
    ) -> None:
        super().__init__(
            DpdkLane(a_host, b_host, window_bytes),
            DpdkLane(b_host, a_host, window_bytes),
        )

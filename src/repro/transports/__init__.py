"""Data-plane mechanisms (substrate S5): what FreeFlow integrates.

Shared memory for co-located containers, RDMA and DPDK for kernel-bypass
across hosts, and kernel TCP as the universal fallback — all behind one
lane/channel interface the agents and the policy engine program against.
"""

from .base import ChannelEnd, DuplexChannel, Lane, LaneStats, Mechanism
from .dpdk import DpdkChannel, DpdkEngine, DpdkLane
from .rdma import RdmaChannel, RdmaLane
from .shmem import ShmChannel, ShmLane
from .tcpip import TcpFallbackChannel, TcpLane

__all__ = [
    "ChannelEnd",
    "DpdkChannel",
    "DpdkEngine",
    "DpdkLane",
    "DuplexChannel",
    "Lane",
    "LaneStats",
    "Mechanism",
    "RdmaChannel",
    "RdmaLane",
    "ShmChannel",
    "ShmLane",
    "TcpFallbackChannel",
    "TcpLane",
]

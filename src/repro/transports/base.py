"""Common machinery for data-plane mechanisms (substrate S5).

Every mechanism — shared memory, RDMA, DPDK, kernel TCP — is exposed as a
:class:`DuplexChannel` made of two unidirectional :class:`Lane` pipelines.
FreeFlow's network agents (and the baselines) program against this one
interface, which is what lets the paper's policy engine swap mechanisms
under a connection without the application noticing.

``send`` semantics: the generator returns once the message is accepted by
the mechanism (bounded in-flight window => backpressure), not when it is
delivered; ``recv`` blocks until a message arrives.  Delivery timestamps
land on the :class:`~repro.netstack.packet.Message` for measurement.
"""

from __future__ import annotations

import enum
from itertools import count
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..netstack.packet import EndpointAddr, Message
from ..sim.monitor import StreamingSeries
from ..sim.resources import Store
from ..telemetry import flowrecords as _flowrecords
from ..telemetry import registry as _registry
from ..telemetry import tracer as _tracer

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment

__all__ = ["Mechanism", "LaneStats", "Lane", "ChannelEnd", "DuplexChannel"]

#: Monotone lane ids: the default flow label is "<mechanism>/<id>".
_lane_ids = count(1)


class Mechanism(enum.Enum):
    """The data-plane mechanisms FreeFlow integrates (paper §4.2)."""

    SHM = "shm"
    RDMA = "rdma"
    DPDK = "dpdk"
    TCP = "tcp"

    @property
    def kernel_bypass(self) -> bool:
        return self is not Mechanism.TCP


class LaneStats:
    """Delivery counters for one lane.

    ``latencies`` is a :class:`~repro.sim.monitor.StreamingSeries`: exact
    count/sum/min/max plus a bounded reservoir for percentiles, so a lane
    that delivers millions of messages does not grow memory linearly.
    """

    __slots__ = ("messages_sent", "messages_delivered", "payload_bytes", "latencies")

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.payload_bytes = 0
        self.latencies = StreamingSeries()

    def record_delivery(self, message: Message) -> None:
        self.messages_delivered += 1
        self.payload_bytes += message.size_bytes
        self.latencies.add(message.latency)


class Lane:
    """A unidirectional message pipeline with an inbox at the far end.

    Subclasses implement :meth:`send`; they call :meth:`deliver` when the
    message reaches the destination endpoint.
    """

    __slots__ = ("env", "mechanism", "inbox", "stats", "closed", "on_deliver",
                 "flow", "record_deliveries")

    def __init__(self, env: "Environment", mechanism: Mechanism) -> None:
        self.env = env
        self.mechanism = mechanism
        self.inbox: Store = Store(env)
        self.stats = LaneStats()
        self.closed = False
        #: Whether deliveries feed the flight recorder.  Composite lanes
        #: (the agent relay, the TCP adapter) clear this on their inner
        #: lane so each message is accounted exactly once, at the
        #: outermost — flow-labelled — delivery point.
        self.record_deliveries = True
        #: Hook invoked on each delivery (used by the migration machinery
        #: and by tests that need to observe the exact delivery instant).
        self.on_deliver: Optional[Callable[[Message], None]] = None
        #: Flow label the tracer keys traces by; connection owners may
        #: overwrite it with something meaningful ("web->db").
        self.flow = f"{mechanism.value}/{next(_lane_ids)}"
        registry = _registry.ACTIVE
        if registry is not None:
            registry.register_lane(self)

    def make_message(
        self,
        nbytes: int,
        payload: Any = None,
        src: Optional[EndpointAddr] = None,
        dst: Optional[EndpointAddr] = None,
    ) -> Message:
        message = Message(size_bytes=nbytes, src=src, dst=dst, payload=payload)
        message.sent_at = self.env.now
        self.stats.messages_sent += 1
        tracer = _tracer.ACTIVE
        if tracer is not None:
            trace = tracer.begin(self.flow, self.mechanism.value,
                                 self.env.now)
            if trace is not None:
                message.meta["trace"] = trace
        return message

    def _trace_of(self, message: Message):
        """The message's open trace, or None (one compare when disabled)."""
        if _tracer.ACTIVE is None:
            return None
        return message.meta.get("trace")

    def _finish_trace(self, message: Message) -> None:
        """Close the message's trace at receive time (idempotent)."""
        tracer = _tracer.ACTIVE
        if tracer is not None:
            trace = message.meta.get("trace")
            if trace is not None:
                tracer.finish(trace, self.env.now)

    def send(self, nbytes: int, payload: Any = None):
        """Push one message into the lane (generator). Must be overridden."""
        raise NotImplementedError

    def deliver(self, message: Message) -> None:
        """Final step: timestamp, account and enqueue at the receiver."""
        message.delivered_at = self.env.now
        self.stats.record_delivery(message)
        recorder = _flowrecords.ACTIVE
        if recorder is not None and self.record_deliveries:
            recorder.on_deliver(self.flow, message.size_bytes, self.env.now)
        if self.on_deliver is not None:
            self.on_deliver(message)
        self.inbox.put(message)

    def recv(self):
        """Blocking receive (generator)."""
        message = yield self.inbox.get()
        self._finish_trace(message)
        return message

    def adopt(self, message: Message) -> None:
        """Take ownership of a delivered-but-unconsumed message that was
        sitting in another lane's inbox when the channel was swapped
        (live migration / repair).

        Accounting moves with the message: the adopting lane counts it
        as sent *and* delivered (so ``in_flight`` stays conserved and
        this lane's delivered/byte counters reflect every message it
        will actually serve), and the message's open trace — if any — is
        re-keyed to this lane's flow and mechanism so it finishes under
        the live flow instead of dangling on the closed one.  The
        delivery latency sample stays with the lane that actually
        delivered the message; it is not re-recorded here.
        """
        self.stats.messages_sent += 1
        self.stats.messages_delivered += 1
        self.stats.payload_bytes += message.size_bytes
        trace = message.meta.get("trace")
        if trace is not None:
            trace.flow = self.flow
            trace.mechanism = self.mechanism.value
        self.inbox.put(message)

    def eject_receivers(self, exception: BaseException) -> None:
        """Fail every receiver parked on this lane's inbox.

        Used when a migration swaps the channel under a connection: the
        parked receivers are woken with :class:`ChannelRebound` and retry
        against the new channel.
        """
        pending = list(self.inbox._get_queue)
        self.inbox._get_queue.clear()
        for get in pending:
            get.fail(exception)

    def close(self) -> None:
        self.closed = True


class ChannelEnd:
    """One side of a duplex channel: sends on one lane, receives on the other."""

    def __init__(self, out_lane: Lane, in_lane: Lane) -> None:
        self._out = out_lane
        self._in = in_lane

    @property
    def mechanism(self) -> Mechanism:
        return self._out.mechanism

    def send(self, nbytes: int, payload: Any = None):
        result = yield from self._out.send(nbytes, payload)
        return result

    def recv(self):
        message = yield from self._in.recv()
        return message

    @property
    def send_stats(self) -> LaneStats:
        return self._out.stats

    @property
    def recv_stats(self) -> LaneStats:
        return self._in.stats


class DuplexChannel:
    """Two lanes glued into a bidirectional channel with ``a``/``b`` ends."""

    def __init__(self, lane_ab: Lane, lane_ba: Lane) -> None:
        if lane_ab.mechanism is not lane_ba.mechanism:
            raise ValueError("both lanes must use the same mechanism")
        self.lane_ab = lane_ab
        self.lane_ba = lane_ba
        self.a = ChannelEnd(lane_ab, lane_ba)
        self.b = ChannelEnd(lane_ba, lane_ab)

    @property
    def mechanism(self) -> Mechanism:
        return self.lane_ab.mechanism

    def close(self) -> None:
        self.lane_ab.close()
        self.lane_ba.close()

"""Shared-memory channel: the intra-host fast path (paper §3.1).

Two containers on the same host are just two processes; once the
namespace wall is (deliberately) pierced, they can exchange data through
a shared ring buffer:

* the sender memcpys the payload into the ring — one core held for the
  copy, bytes through the shared memory bus (the "still burns some cpu"
  of §2.3.1);
* the receiver is notified (futex-style wakeup) and, in the default
  zero-copy configuration, consumes the data in place;
* ring occupancy is the backpressure point.

Single-pair throughput is bounded by the single-core memcpy rate
(≈ 9.6 GB/s ≈ 77 Gb/s on the paper's Xeon — "near-to-memory-bandwidth");
many pairs together saturate the memory bus itself, which is the
"memory bus" ceiling line in the paper's §2.4 sketch of Figure 2(a).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..errors import TransportError
from ..hardware.specs import ShmSpec
from ..sim.resources import Store, Tank
from .base import DuplexChannel, Lane, Mechanism

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host

__all__ = ["ShmLane", "ShmChannel"]


class ShmLane(Lane):
    """One direction of a shared-memory ring between two local processes."""

    __slots__ = ("host", "spec", "ring", "_rx_queue")

    def __init__(self, host: "Host", spec: Optional[ShmSpec] = None) -> None:
        super().__init__(host.env, Mechanism.SHM)
        self.host = host
        self.spec = spec or host.spec.shm
        self.ring = Tank(host.env, capacity=self.spec.ring_bytes)
        host.memory.allocate(self.spec.ring_bytes)
        if self.spec.zero_copy_receive:
            self._rx_queue: Optional[Store] = None
        else:
            self._rx_queue = Store(host.env)
            host.env.process(self._rx_copy_worker())

    def send(self, nbytes: int, payload: Any = None):
        """Copy one message into the ring and wake the receiver."""
        if self.closed:
            raise TransportError("shared-memory channel closed")
        if nbytes > self.spec.ring_bytes:
            raise TransportError(
                f"message of {nbytes} B exceeds ring size {self.spec.ring_bytes} B"
            )
        message = self.make_message(nbytes, payload)
        # Remember which ring holds the payload so the consumer can free
        # the right one even if the message is transplanted to a new
        # channel during a live migration.
        message.meta["ring"] = self.ring
        trace = self._trace_of(message)
        mark = self.env.now
        yield from self.host.cpu.execute(self.spec.per_message_cycles)
        yield self.ring.put(max(1, nbytes))
        if trace is not None:
            trace.add("queue", mark, self.env.now)
            mark = self.env.now
        # Ring bytes double as the payload's storage until the consumer
        # repays them (ring.get in recv/_rx_copy_worker, routed through
        # message.meta["ring"] so transplants free the right ring).
        # simlint: disable=SIM012
        yield from self.host.memcpy(nbytes)
        if trace is not None:
            trace.add("copy", mark, self.env.now)
            mark = self.env.now
        yield from self.host.cpu.execute(self.spec.notify_cycles)
        yield self.env.timeout(self.spec.notify_latency_s)
        if trace is not None:
            # The futex-style receiver wakeup is the shm path's only
            # kernel involvement.
            trace.add("kernel", mark, self.env.now)
        if self._rx_queue is None:
            self.deliver(message)
        else:
            self._rx_queue.put(message)
        return message

    def _rx_copy_worker(self):
        """Receive-side memcpy stage (only when zero-copy is disabled)."""
        if self._rx_queue is None:
            raise TransportError(
                "shm rx copy worker started without an rx queue "
                "(invariant: zero-copy lanes deliver directly and never "
                "start this worker)"
            )
        while True:
            message = yield self._rx_queue.get()
            trace = self._trace_of(message)
            mark = self.env.now
            yield from self.host.memcpy(message.size_bytes)
            if trace is not None:
                trace.add("copy", mark, self.env.now)
            self.deliver(message)

    def recv(self):
        """Consume the next message and free its ring space."""
        message = yield self.inbox.get()
        trace = self._trace_of(message)
        mark = self.env.now
        yield from self.host.cpu.execute(self.spec.per_message_cycles)
        ring = message.meta.pop("ring", self.ring)
        yield ring.get(max(1, message.size_bytes))
        if trace is not None:
            trace.add("consume", mark, self.env.now)
        self._finish_trace(message)
        return message

    def close(self) -> None:
        if not self.closed:
            self.host.memory.free(self.spec.ring_bytes)
        super().close()


class ShmChannel(DuplexChannel):
    """Bidirectional shared-memory channel between two co-located processes."""

    def __init__(self, host: "Host", spec: Optional[ShmSpec] = None) -> None:
        super().__init__(ShmLane(host, spec), ShmLane(host, spec))
        self.host = host

"""Kernel TCP as a transport lane: the universal fallback (paper §4.2).

FreeFlow's agents fall back to plain host-mode kernel TCP whenever the
preferred mechanisms are unavailable ("If the best mechanism is not
available (e.g. NIC lack of RDMA support), it will fall back to the
sub-optimal mechanism (e.g., TCP/IP)").  This module adapts the
functional kernel path from :mod:`repro.netstack.tcp` to the uniform
:class:`~repro.transports.base.Lane` interface so the policy engine can
treat it like any other mechanism.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from ..netstack.packet import EndpointAddr
from ..netstack.tcp import TcpConnection, TcpMode
from ..telemetry import flowrecords as _flowrecords
from .base import DuplexChannel, Lane, Mechanism

if TYPE_CHECKING:  # pragma: no cover
    from ..hardware.host import Host

__all__ = ["TcpLane", "TcpFallbackChannel"]


class TcpLane(Lane):
    """Adapter lane over one direction of a host-mode kernel connection."""

    __slots__ = ("_direction",)

    def __init__(self, direction) -> None:
        super().__init__(direction.env, Mechanism.TCP)
        self._direction = direction
        # This adapter re-accounts each delivery under its own flow
        # label (which the flow table may rewrite to "f<n>:src->dst");
        # suppress the kernel path's recorder hook so nothing is
        # counted twice.
        direction.record_deliveries = False
        direction.env.process(self._pump())

    def send(self, nbytes: int, payload: Any = None):
        message = yield from self._direction.send(nbytes, payload)
        self.stats.messages_sent += 1
        return message

    def _pump(self):
        """Re-timestamp deliveries into the lane's own inbox/stats."""
        while True:
            message = yield self._direction.inbox.get()
            # The kernel path already stamped delivered_at; keep it and
            # only run the lane-side accounting.
            self.stats.record_delivery(message)
            recorder = _flowrecords.ACTIVE
            if recorder is not None and self.record_deliveries:
                recorder.on_deliver(self.flow, message.size_bytes,
                                    self.env.now)
            if self.on_deliver is not None:
                self.on_deliver(message)
            self.inbox.put(message)

    def recv(self):
        message = yield self.inbox.get()
        self._finish_trace(message)
        return message


class TcpFallbackChannel(DuplexChannel):
    """Host-mode kernel TCP dressed as a duplex mechanism channel."""

    def __init__(
        self,
        a_host: "Host",
        b_host: "Host",
        a_addr: Optional[EndpointAddr] = None,
        b_addr: Optional[EndpointAddr] = None,
        window_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        a_addr = a_addr or EndpointAddr(f"{a_host.name}", 0)
        b_addr = b_addr or EndpointAddr(f"{b_host.name}", 1)
        self.connection = TcpConnection(
            a_host,
            b_host,
            a_addr,
            b_addr,
            mode=TcpMode.HOST,
            window_bytes=window_bytes,
        )
        lane_ab, lane_ba = self.connection._lanes
        super().__init__(TcpLane(lane_ab), TcpLane(lane_ba))

"""CPU model: a set of cores as a contended resource with accounting.

All software costs in the simulation — kernel stack traversal, memcpy,
verbs posting, overlay routing — are expressed in *cycles* and executed
here, so CPU utilisation (the paper's third metric) falls out of the same
mechanism that limits throughput.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..sim.monitor import IntervalRecorder
from ..sim.resources import Request, Resource
from .specs import CpuSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment

__all__ = ["CpuSet", "CoreClaim"]


class CoreClaim:
    """A long-lived hold on one core (e.g. a DPDK poll-mode thread).

    Created via :meth:`CpuSet.dedicate`; call :meth:`release` to give the
    core back.  The core counts as busy for the whole claim, matching how
    a spinning PMD thread shows up in ``top``.
    """

    def __init__(self, cpu: "CpuSet", request: Request) -> None:
        self._cpu = cpu
        self._request = request
        self._released = False

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        self._request.cancel()
        self._cpu.recorder.idle()


class CpuSet:
    """``spec.cores`` identical cores at ``spec.frequency_hz``.

    The main entry point is :meth:`execute`, a generator that occupies one
    core for the wall time of ``cycles`` of work::

        yield from cpu.execute(spec.kernel.syscall_cycles)
    """

    def __init__(self, env: "Environment", spec: Optional[CpuSpec] = None) -> None:
        self.env = env
        self.spec = spec or CpuSpec()
        self._cores = Resource(env, capacity=self.spec.cores)
        self.recorder = IntervalRecorder(env)

    @property
    def cores(self) -> int:
        return self.spec.cores

    @property
    def busy_cores(self) -> float:
        """How many cores are busy right now."""
        return self.recorder.active

    def seconds_for(self, cycles: float) -> float:
        """Wall time for ``cycles`` on one core (no queueing)."""
        return self.spec.seconds_for(cycles)

    def execute(self, cycles: float, priority: int = 0):
        """Run ``cycles`` of work on one core (generator; yield from it).

        Queues if all cores are busy; the wait time is how CPU saturation
        turns into throughput loss in the experiments.
        """
        if cycles < 0:
            raise ValueError(f"negative cycles {cycles}")
        if cycles == 0:
            return
        with self._cores.request(priority=priority) as claim:
            yield claim
            self.recorder.busy()
            try:
                yield self.env.timeout(self.seconds_for(cycles))
            finally:
                self.recorder.idle()

    def hold(self, seconds: float, priority: int = 0):
        """Occupy one core for a fixed wall time (for stall-dominated work
        such as memcpy waiting on the memory bus)."""
        if seconds < 0:
            raise ValueError(f"negative seconds {seconds}")
        with self._cores.request(priority=priority) as claim:
            yield claim
            self.recorder.busy()
            try:
                yield self.env.timeout(seconds)
            finally:
                self.recorder.idle()

    def dedicate(self) -> CoreClaim:
        """Permanently claim a core (DPDK PMD thread).

        The claim is granted immediately if a core is free; otherwise this
        raises, because a real PMD pin would simply starve — surfacing the
        misconfiguration is more useful in experiments.
        """
        request = self._cores.request(priority=-1)
        if not request.triggered:
            request.cancel()
            raise RuntimeError(
                f"no free core to dedicate ({self._cores.count}/{self.cores} busy)"
            )
        self.recorder.busy()
        return CoreClaim(self, request)

    def utilisation(self) -> float:
        """Mean busy cores over the measurement window (1.0 = one core)."""
        return self.recorder.utilisation()

    def utilisation_percent(self) -> float:
        """Paper-style CPU usage: 200.0 means two cores' worth."""
        return self.recorder.utilisation_percent()

    def reset_accounting(self) -> None:
        self.recorder.reset()

"""A physical host: CPU + memory bus + NIC, assembled from a HostSpec.

Hosts are where containers land and where FreeFlow's network agents run.
Everything a transport needs — cores to burn, a bus to copy through, a
NIC to reach the fabric — hangs off this object.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .cpu import CpuSet
from .link import Fabric
from .memory import MemoryBus
from .nic import PhysicalNic
from .specs import PAPER_TESTBED, HostSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment
    from .vm import VirtualMachine

__all__ = ["Host"]


class Host:
    """One bare-metal server in the cluster."""

    def __init__(
        self,
        env: "Environment",
        name: str,
        spec: Optional[HostSpec] = None,
        fabric: Optional[Fabric] = None,
    ) -> None:
        self.env = env
        self.name = name
        self.spec = spec or PAPER_TESTBED
        self.cpu = CpuSet(env, self.spec.cpu)
        self.memory = MemoryBus(env, self.spec.memory)
        self.nic = PhysicalNic(env, self.spec.nic, name=f"{name}.eth0")
        self.nic.host = self
        self.vms: list["VirtualMachine"] = []
        if fabric is not None:
            fabric.attach(self.nic)

    @property
    def fabric(self) -> Optional[Fabric]:
        return self.nic.fabric

    @property
    def rdma_capable(self) -> bool:
        return self.nic.rdma_capable

    @property
    def dpdk_capable(self) -> bool:
        return self.nic.dpdk_capable

    def same_machine(self, other: "Host") -> bool:
        """True when both names refer to this physical machine."""
        return other is self

    # -- convenience wrappers used throughout the transports ---------------

    def execute(self, cycles: float, priority: int = 0):
        """Run CPU work on this host (generator)."""
        yield from self.cpu.execute(cycles, priority=priority)

    def memcpy(self, nbytes: float, priority: int = 0):
        """One-core memcpy through this host's memory bus (generator)."""
        yield from self.memory.copy(self.cpu, nbytes, priority=priority)

    def dma(self, nbytes: float, priority: int = 0):
        """Device DMA through the memory bus, no CPU (generator)."""
        yield from self.memory.dma(nbytes, priority=priority)

    def reset_accounting(self) -> None:
        """Restart utilisation windows (called at measurement start)."""
        self.cpu.reset_accounting()
        self.nic.reset_accounting()
        self.memory.pipe.reset_accounting()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Host {self.name} spec={self.spec.name}>"

"""Hardware and cost-model specifications (single source of calibration).

Every constant that shapes an experiment's outcome lives here, documented
against the paper's testbed:

    "Intel Xeon 2.40GHz 4-cores CPU, 67 GB of memory,
     40Gbps Mellanox CX3 NIC, CentOS 7"  (paper §1)

and against the paper's reported numbers:

* bridge-mode TCP between two local containers  ≈ 27 Gb/s at ~200 % CPU,
  ~1 ms latency for the large messages they measured (§2.3.1);
* host-mode TCP ≈ 38 Gb/s (§2.4 "Host-mode provides a better performance
  of 38 Gb/s");
* RDMA loopback = 40 Gb/s (link-bound) at low CPU;
* shared memory ≈ memory bandwidth, lowest latency, "still burns some CPU".

The derivations:

* one 2.4 GHz core saturated by the sender-side kernel TCP path at
  27 Gb/s (3.375 GB/s) implies ≈ 0.71 cycles/byte on that path
  including per-segment/syscall overheads; we split it into a base
  stack cost and a bridge-hop surcharge so host mode (no bridge) lands
  at ≈ 38 Gb/s;
* a Xeon E5 v1/v2 with 4 DDR3 channels sustains ≈ 51 GB/s stream
  bandwidth; a single-core memcpy sustains ≈ 8-10 GB/s, i.e.
  ≈ 0.25 cycles/byte.

Nothing outside this module hardcodes a throughput or latency target.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "CpuSpec",
    "MemorySpec",
    "NicSpec",
    "KernelStackSpec",
    "OverlayRouterSpec",
    "ShmSpec",
    "DpdkSpec",
    "VmSpec",
    "HostSpec",
    "PAPER_TESTBED",
    "NO_RDMA_TESTBED",
    "GBPS",
    "gbps",
    "to_gbps",
]

#: Bits per second in one Gb/s (decimal, networking convention).
GBPS = 1e9


def gbps(value: float) -> float:
    """Convert Gb/s to bytes/second."""
    return value * GBPS / 8.0


def to_gbps(bytes_per_second: float) -> float:
    """Convert bytes/second to Gb/s."""
    return bytes_per_second * 8.0 / GBPS


@dataclass(frozen=True)
class CpuSpec:
    """A host's CPU package."""

    cores: int = 4
    frequency_hz: float = 2.4e9  # Intel Xeon 2.40 GHz (paper testbed)

    def seconds_for(self, cycles: float) -> float:
        """Wall time one core needs for ``cycles`` of work."""
        return cycles / self.frequency_hz


@dataclass(frozen=True)
class MemorySpec:
    """DRAM capacity and the shared memory-bus bandwidth model."""

    capacity_bytes: float = 67e9  # 67 GB (paper testbed)
    #: Aggregate stream bandwidth of the socket (4×DDR3-1600 ≈ 51.2 GB/s).
    bus_bandwidth_bps: float = 51.2e9 * 8
    #: Single-core memcpy cost; 0.25 cycles/byte ≈ 9.6 GB/s/core at 2.4 GHz.
    copy_cycles_per_byte: float = 0.25
    #: Chunk size used when time-sharing the bus between flows.
    chunk_bytes: int = 256 * 1024

    @property
    def bus_bandwidth_bytes(self) -> float:
        return self.bus_bandwidth_bps / 8.0


@dataclass(frozen=True)
class NicSpec:
    """A physical NIC (modelled on the Mellanox ConnectX-3 EN 40 Gb/s)."""

    model: str = "Mellanox CX3"
    link_rate_bps: float = 40 * GBPS
    rdma_capable: bool = True
    dpdk_capable: bool = True
    #: Packets/messages the embedded NIC processor can handle per second.
    #: CX3 does ~35 M msg/s verbs rate for tiny messages; we model the
    #: engine as a per-work-request service time.
    rdma_engine_op_seconds: float = 0.15e-6
    #: NIC-side per-byte processing for RDMA (DMA engines, not host CPU).
    rdma_engine_cycles_per_byte: float = 0.0
    #: Host-CPU cost to post one work request / poll one completion.
    rdma_post_cycles: float = 450.0
    rdma_poll_cycles: float = 250.0
    #: Completions one CQ poll drains (the NIC/driver's batch size);
    #: seeds :attr:`repro.core.verbs.CompletionQueue.poll_batch`.
    cq_poll_batch: int = 16
    #: PCIe DMA latency per transfer direction.
    dma_latency_s: float = 0.30e-6
    #: Wire/serialisation chunk for sharing the link between flows.
    chunk_bytes: int = 64 * 1024
    #: Fraction of the link rate usable for payload+headers (flow control,
    #: symbol overhead).  Credit-based RDMA links run very close to line
    #: rate, which is why the paper can report a flat "40 Gb/s".
    efficiency: float = 0.99
    #: RDMA framing: 4 KB path MTU with ~26 B of RoCE/IB headers — far
    #: cheaper than the kernel path's per-1500B Ethernet+IP+TCP headers.
    rdma_mtu_bytes: int = 4096
    rdma_header_bytes: int = 26

    @property
    def link_rate_bytes(self) -> float:
        return self.link_rate_bps / 8.0

    @property
    def goodput_bytes(self) -> float:
        return self.link_rate_bytes * self.efficiency

    def rdma_wire_bytes(self, payload: int) -> int:
        """Payload plus RDMA framing overhead on the wire."""
        if payload <= 0:
            return 0
        packets = max(1, -(-payload // self.rdma_mtu_bytes))
        return payload + packets * self.rdma_header_bytes


@dataclass(frozen=True)
class KernelStackSpec:
    """Cost model of the kernel TCP/IP path (per endpoint).

    Calibration: a sender-side cost of 0.435 cycles/byte — plus the
    per-segment, syscall and stack-latency overheads below — makes a
    single 2.4 GHz core top out at ≈ 38 Gb/s (paper's host mode); the
    bridge-hop surcharge of 0.18 cycles/byte lowers that to ≈ 27 Gb/s
    (paper's docker0/bridge mode).
    """

    #: Copy + checksum + stack traversal on the send path (cycles/byte).
    send_cycles_per_byte: float = 0.435
    #: Same for the receive path (softirq + copy-to-user).
    recv_cycles_per_byte: float = 0.435
    #: Per-segment fixed cost (skb alloc, protocol headers, timers).
    per_segment_cycles: float = 4000.0
    #: Cost of one syscall (enter/exit, context save).
    syscall_cycles: float = 2600.0
    #: Latency adders that are not CPU work (scheduler wakeups, softirq
    #: batching) — applied once per message per endpoint.
    stack_latency_s: float = 2.5e-6
    #: Effective segment size (TSO/GRO makes the unit 64 KB, not MTU).
    segment_bytes: int = 64 * 1024
    #: MTU actually on the wire; wire overhead = headers per MTU.
    mtu_bytes: int = 1500
    header_bytes: int = 54  # Ethernet + IPv4 + TCP
    #: veth + Linux bridge forwarding surcharge (cycles/byte + per packet).
    bridge_cycles_per_byte: float = 0.18
    bridge_per_segment_cycles: float = 1500.0
    bridge_latency_s: float = 1.0e-6

    def wire_bytes(self, payload: int) -> int:
        """Payload plus per-MTU header overhead on the physical wire."""
        if payload <= 0:
            return 0
        packets = max(1, -(-payload // self.mtu_bytes))
        return payload + packets * self.header_bytes


@dataclass(frozen=True)
class OverlayRouterSpec:
    """A user-space overlay router (Weave-like) data-plane cost model.

    Traffic hairpins through the router process: kernel → user copy,
    VXLAN encap, user → kernel copy, so the per-byte toll is high and the
    router process itself burns CPU — which is exactly why the paper's
    Fig. 1 shows overlay mode losing to host mode.
    """

    #: Copy in + encap + copy out, per byte, inside the router process.
    #: 2.0 cycles/byte makes a single router core top out near 9.6 Gb/s,
    #: in line with user-space overlay routers of the Weave era.
    router_cycles_per_byte: float = 2.0
    #: Per-packet work in the router (lookup, header build).
    per_segment_cycles: float = 6000.0
    #: Context-switch / wakeup latency into the router, per direction.
    traversal_latency_s: float = 12.0e-6
    #: VXLAN-ish encapsulation overhead on the wire.
    encap_bytes: int = 50
    #: Whether the router can use kernel-bypass (FreeFlow's router does).
    kernel_bypass: bool = False


@dataclass(frozen=True)
class ShmSpec:
    """Shared-memory channel cost model (single-copy ring buffer)."""

    #: Futex/eventfd wakeup of the peer, per message batch.
    notify_latency_s: float = 0.8e-6
    notify_cycles: float = 1200.0
    #: Ring bookkeeping per message.
    per_message_cycles: float = 300.0
    #: Size of the shared ring (backpressure point).
    ring_bytes: int = 8 * 1024 * 1024
    #: If True the receiver consumes in place (zero-copy read);
    #: if False the receiver memcpys out of the ring too.
    zero_copy_receive: bool = True


@dataclass(frozen=True)
class DpdkSpec:
    """DPDK userspace polling transport cost model."""

    #: Poll-mode driver per-byte cost (one copy into NIC ring).
    cycles_per_byte: float = 0.30
    #: ~250 cycles/packet ≈ 9.6 Mpps/core, typical of a tuned PMD.
    per_packet_cycles: float = 250.0
    #: A PMD thread spins on a dedicated core even when idle.
    dedicated_cores: int = 1
    poll_latency_s: float = 0.5e-6


@dataclass(frozen=True)
class VmSpec:
    """Virtual machine overhead model (for deployment cases (c)/(d))."""

    vcpus: int = 4
    #: Extra per-byte cost of the virtio/vswitch path.
    virtio_cycles_per_byte: float = 0.35
    virtio_per_segment_cycles: float = 3500.0
    virtio_latency_s: float = 8.0e-6
    #: SR-IOV passthrough skips the virtio tax for RDMA/DPDK.
    sriov: bool = True


@dataclass(frozen=True)
class HostSpec:
    """A complete host: CPU + memory + NIC + kernel cost models."""

    name: str = "xeon-cx3"
    cpu: CpuSpec = field(default_factory=CpuSpec)
    memory: MemorySpec = field(default_factory=MemorySpec)
    nic: NicSpec = field(default_factory=NicSpec)
    kernel: KernelStackSpec = field(default_factory=KernelStackSpec)
    overlay: OverlayRouterSpec = field(default_factory=OverlayRouterSpec)
    shm: ShmSpec = field(default_factory=ShmSpec)
    dpdk: DpdkSpec = field(default_factory=DpdkSpec)

    def without_rdma(self) -> "HostSpec":
        """The same host with a plain (non-RDMA, non-DPDK) NIC."""
        plain = replace(self.nic, rdma_capable=False, dpdk_capable=False,
                        model=self.nic.model + " (no RDMA)")
        return replace(self, nic=plain)


#: The paper's evaluation testbed.
PAPER_TESTBED = HostSpec()

#: Constraint row from the paper's (commented) Table 1: "w/o RDMA NIC".
NO_RDMA_TESTBED = PAPER_TESTBED.without_rdma()

"""Shared-bandwidth pipes: the common mechanism behind buses, links, NICs.

A :class:`BandwidthPipe` serialises data at a fixed byte rate.  Transfers
are split into chunks and the pipe is acquired per chunk, so concurrent
flows interleave and converge to a fair share while the aggregate stays at
the pipe's capacity — which is how multi-pair experiments saturate the
memory bus (shm) or the NIC link (RDMA) without any closed-form math.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.monitor import TimeWeighted
from ..sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment

__all__ = ["BandwidthPipe"]


class BandwidthPipe:
    """Serialises bytes at ``rate_bytes`` per second, time-shared by chunk.

    Parameters
    ----------
    rate_bytes:
        Capacity in bytes/second.
    chunk_bytes:
        Granularity of time-sharing.  Smaller chunks are fairer but cost
        more simulation events.
    lanes:
        Number of transfers served simultaneously (each at ``rate/lanes``
        while more than one is active is *not* modelled; lanes > 1 simply
        allows that many chunk holders at full rate — use 1 for strict
        serialisation, which is the right model for a bus or a link).
    """

    def __init__(
        self,
        env: "Environment",
        rate_bytes: float,
        chunk_bytes: int = 64 * 1024,
        lanes: int = 1,
        name: str = "pipe",
    ) -> None:
        if rate_bytes <= 0:
            raise ValueError(f"rate must be positive, got {rate_bytes}")
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        self.env = env
        self.name = name
        self.rate_bytes = float(rate_bytes)
        self.chunk_bytes = int(chunk_bytes)
        self._slots = Resource(env, capacity=lanes)
        self._busy = TimeWeighted(env)
        self._bytes_moved = 0.0

    @property
    def bytes_moved(self) -> float:
        """Total bytes ever pushed through the pipe."""
        return self._bytes_moved

    def seconds_for(self, nbytes: float) -> float:
        """Uncontended serialisation time for ``nbytes``."""
        return nbytes / self.rate_bytes

    def transfer(self, nbytes: float, priority: int = 0):
        """Move ``nbytes`` through the pipe (generator; yield from it).

        Returns (via StopIteration) the time the transfer took, useful to
        callers that overlap pipe time with CPU time.
        """
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        start = self.env.now
        remaining = float(nbytes)
        while remaining > 0:
            chunk = min(remaining, self.chunk_bytes)
            with self._slots.request(priority=priority) as slot:
                yield slot
                self._busy.add(1)
                try:
                    yield self.env.timeout(chunk / self.rate_bytes)
                finally:
                    self._busy.add(-1)
            remaining -= chunk
            self._bytes_moved += chunk
        return self.env.now - start

    def utilisation(self) -> float:
        """Time-weighted mean occupancy in [0, lanes]."""
        return self._busy.mean()

    def achieved_rate(self, since: float, now: float | None = None) -> float:
        """Rough delivered rate over a window — callers usually compute
        this from their own byte counters instead."""
        end = self.env.now if now is None else now
        if end <= since:
            return 0.0
        return self._bytes_moved / (end - since)

    def reset_accounting(self) -> None:
        self._busy.reset()
        self._bytes_moved = 0.0

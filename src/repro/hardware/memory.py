"""Memory subsystem: DRAM capacity plus the shared memory bus.

The memory bus is the resource that bounds shared-memory networking.
:meth:`MemoryBus.copy` models a memcpy: the copying core is held for the
whole operation (a stalled core is still a busy core, which is why the
paper notes shared memory "still burns some cpu"), while the bytes move
through the bus pipe, which is shared with every other flow on the host.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .bandwidth import BandwidthPipe
from .cpu import CpuSet
from .specs import MemorySpec

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment

__all__ = ["MemoryBus"]


class MemoryBus:
    """The host's DRAM bandwidth, shared by all cores, NIC DMA included."""

    def __init__(self, env: "Environment", spec: Optional[MemorySpec] = None) -> None:
        self.env = env
        self.spec = spec or MemorySpec()
        self.pipe = BandwidthPipe(
            env,
            rate_bytes=self.spec.bus_bandwidth_bytes,
            chunk_bytes=self.spec.chunk_bytes,
            name="membus",
        )
        self._allocated = 0.0

    # -- capacity accounting (coarse; prevents absurd configurations) -----

    @property
    def allocated_bytes(self) -> float:
        return self._allocated

    def allocate(self, nbytes: float) -> None:
        """Reserve DRAM capacity (buffers, rings)."""
        if nbytes < 0:
            raise ValueError(f"negative allocation {nbytes}")
        if self._allocated + nbytes > self.spec.capacity_bytes:
            raise MemoryError(
                f"host DRAM exhausted: {self._allocated + nbytes:.0f} "
                f"> {self.spec.capacity_bytes:.0f} bytes"
            )
        self._allocated += nbytes

    def free(self, nbytes: float) -> None:
        self._allocated = max(0.0, self._allocated - nbytes)

    # -- bandwidth ----------------------------------------------------------

    def dma(self, nbytes: float, priority: int = 0):
        """Move bytes via device DMA: consumes bus bandwidth, no CPU."""
        yield from self.pipe.transfer(nbytes, priority=priority)

    def copy(self, cpu: CpuSet, nbytes: float, priority: int = 0):
        """A memcpy of ``nbytes`` performed by one core.

        The copy is bounded by whichever is slower: the core's copy rate
        (``copy_cycles_per_byte``) or the core's share of the bus.  The
        core is held for the full duration either way.
        """
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        if nbytes == 0:
            return
        cpu_seconds = cpu.seconds_for(nbytes * self.spec.copy_cycles_per_byte)

        def _copy_with_core():
            start = self.env.now
            bus_seconds = yield from self.pipe.transfer(nbytes, priority=priority)
            # If the core-side copy rate is the bottleneck, the remainder
            # of the copy time is spent executing (bus already released).
            extra = cpu_seconds - bus_seconds
            if extra > 0:
                yield self.env.timeout(extra)
            return self.env.now - start

        # Hold one core for the whole copy (stall time included).
        with cpu._cores.request(priority=priority) as claim:
            yield claim
            cpu.recorder.busy()
            try:
                yield from _copy_with_core()
            finally:
                cpu.recorder.idle()

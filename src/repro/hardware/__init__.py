"""Hardware models (substrate S2): the simulated testbed.

CPU cores, the memory bus, NICs with RDMA engines, the switched fabric,
hosts and VMs — calibrated in :mod:`repro.hardware.specs` against the
paper's Xeon + Mellanox CX3 testbed.
"""

from .bandwidth import BandwidthPipe
from .cpu import CoreClaim, CpuSet
from .host import Host
from .link import Fabric
from .memory import MemoryBus
from .nic import PhysicalNic
from .topology import FabricLink, FatTreeFabric, FatTreeTopology, SwitchNode
from .specs import (
    GBPS,
    NO_RDMA_TESTBED,
    PAPER_TESTBED,
    CpuSpec,
    DpdkSpec,
    HostSpec,
    KernelStackSpec,
    MemorySpec,
    NicSpec,
    OverlayRouterSpec,
    ShmSpec,
    VmSpec,
    gbps,
    to_gbps,
)
from .vm import VirtualMachine

__all__ = [
    "BandwidthPipe",
    "CoreClaim",
    "CpuSet",
    "CpuSpec",
    "DpdkSpec",
    "Fabric",
    "FabricLink",
    "FatTreeFabric",
    "FatTreeTopology",
    "GBPS",
    "Host",
    "HostSpec",
    "KernelStackSpec",
    "MemoryBus",
    "MemorySpec",
    "NO_RDMA_TESTBED",
    "NicSpec",
    "OverlayRouterSpec",
    "PAPER_TESTBED",
    "PhysicalNic",
    "ShmSpec",
    "SwitchNode",
    "VirtualMachine",
    "VmSpec",
    "gbps",
    "to_gbps",
]

"""Physical network fabric: links between hosts through a switch.

The default model is a non-blocking switch (standard for a managed
datacenter fabric, which the paper assumes: "deployed over managed
network fabrics") with store-and-forward latency.  Each host's NIC
contributes its own egress and ingress pipes, so the bottlenecks are the
end links — which is where 40 Gb/s RDMA tops out — while the fabric core
never congests.

An optional **two-tier mode** models rack oversubscription: assign NICs
to racks with :meth:`Fabric.assign_rack` and give the fabric a shared
``core_rate_bps``; cross-rack traffic then also traverses the contended
core pipe (plus one more switch hop), while intra-rack traffic keeps the
non-blocking path.  This is what makes rack-locality experiments (bench
E22) possible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..telemetry import registry as _registry

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment
    from .nic import PhysicalNic

__all__ = ["Fabric"]


class Fabric:
    """A switched network connecting every attached NIC to every other."""

    def __init__(
        self,
        env: "Environment",
        switch_latency_s: float = 0.6e-6,
        propagation_s: float = 0.4e-6,
        core_rate_bps: "float | None" = None,
        core_chunk_bytes: int = 64 * 1024,
    ) -> None:
        self.env = env
        self.switch_latency_s = switch_latency_s
        self.propagation_s = propagation_s
        self._nics: list["PhysicalNic"] = []
        #: Per-(src, dst) landing queues: arrivals at a destination NIC
        #: from one source are processed strictly in order, so a small
        #: message can never overtake a large one on the same path.
        self._landing: dict[tuple[int, int], object] = {}
        #: Optional two-tier mode: rack membership + shared core pipe.
        self._racks: dict[int, str] = {}
        #: Active partitions: (side_a, side_b) pairs of NIC id-sets whose
        #: cross traffic is parked at the core stage until :meth:`heal`.
        self._partitions: list[tuple[frozenset[int], frozenset[int]]] = []
        self._heal_event = None
        if core_rate_bps is not None:
            from .bandwidth import BandwidthPipe

            self.core = BandwidthPipe(
                env, rate_bytes=core_rate_bps / 8.0,
                chunk_bytes=core_chunk_bytes, name="fabric-core",
            )
        else:
            self.core = None
        registry = _registry.ACTIVE
        if registry is not None:
            registry.register_fabric(self)

    def attach(self, nic: "PhysicalNic") -> None:
        """Plug a NIC into the fabric."""
        if nic in self._nics:
            raise ValueError(f"{nic!r} already attached")
        self._nics.append(nic)
        nic.fabric = self

    @property
    def nics(self) -> tuple["PhysicalNic", ...]:
        return tuple(self._nics)

    # -- two-tier topology ---------------------------------------------------

    def assign_rack(self, nic: "PhysicalNic", rack: str) -> None:
        """Place a NIC (i.e. its host) into a rack."""
        if nic not in self._nics:
            raise ValueError(f"{nic!r} is not attached to this fabric")
        self._racks[id(nic)] = rack

    def rack_of(self, nic: "PhysicalNic") -> "str | None":
        return self._racks.get(id(nic))

    def crosses_core(self, src: "PhysicalNic", dst: "PhysicalNic") -> bool:
        """True when traffic between the NICs traverses the shared core."""
        if self.core is None:
            return False
        src_rack = self._racks.get(id(src))
        dst_rack = self._racks.get(id(dst))
        if src_rack is None or dst_rack is None:
            return False
        return src_rack != dst_rack

    # -- partitions ----------------------------------------------------------

    def partition(self, side_a, side_b) -> None:
        """Cut connectivity between the NICs in ``side_a`` and ``side_b``.

        In-flight and newly sent traffic crossing the cut is *parked* at
        the fabric's core stage — not dropped — and resumes after
        :meth:`heal`, modelling a reliable link layer that retransmits
        until the path returns (byte conservation holds across the
        outage).  Traffic within either side is unaffected.  Multiple
        partitions stack; ``heal()`` clears them all.
        """
        a = frozenset(id(nic) for nic in side_a)
        b = frozenset(id(nic) for nic in side_b)
        if not a or not b:
            raise ValueError("both partition sides must be non-empty")
        if a & b:
            raise ValueError("partition sides overlap")
        self._partitions.append((a, b))

    def heal(self) -> None:
        """Remove every active partition and release parked traffic."""
        self._partitions.clear()
        event, self._heal_event = self._heal_event, None
        if event is not None:
            event.succeed()

    def partitioned(self, src: "PhysicalNic", dst: "PhysicalNic") -> bool:
        """True while ``src`` → ``dst`` traffic is cut by a partition."""
        src_id, dst_id = id(src), id(dst)
        for side_a, side_b in self._partitions:
            if (src_id in side_a and dst_id in side_b) or (
                src_id in side_b and dst_id in side_a
            ):
                return True
        return False

    def _healed(self):
        """The event parked core workers wait on (created lazily)."""
        if self._heal_event is None:
            self._heal_event = self.env.event()
        return self._heal_event

    @property
    def one_way_latency_s(self) -> float:
        """Propagation + switching delay, excluding serialisation."""
        return self.switch_latency_s + self.propagation_s

    def send(
        self,
        src: "PhysicalNic",
        dst: "PhysicalNic",
        wire_bytes: float,
        deliver: Callable[[], None],
        priority: int = 0,
        flow=None,
    ):
        """Carry ``wire_bytes`` from ``src`` to ``dst`` (generator).

        The calling process pays the *egress* serialisation; propagation
        and the destination's ingress happen in a spawned process so that
        back-to-back sends pipeline, as on a real wire.  ``deliver`` is
        invoked once the last byte has cleared the destination NIC.

        ``flow`` is an optional hashable flow identity.  The single
        switch has one path, so it is ignored here; the fat-tree
        subclass (:class:`~repro.hardware.topology.FatTreeFabric`)
        ECMP-hashes it to pick among equal-cost paths.
        """
        del flow  # single-path fabric: no routing decision to make
        if src.fabric is not self or dst.fabric is not self:
            raise ValueError("both NICs must be attached to this fabric")
        if src is dst:
            raise ValueError("use host-local channels for loopback traffic")
        yield from src.egress.transfer(wire_bytes, priority=priority)
        crosses_core = self.crosses_core(src, dst)
        latency = self.one_way_latency_s
        if crosses_core:
            latency += self.switch_latency_s  # one more hop
        queue = self._landing_queue(src, dst)
        queue.put((self.env.now + latency, wire_bytes,
                   priority, deliver, crosses_core))

    def _landing_queue(self, src: "PhysicalNic", dst: "PhysicalNic"):
        from ..sim.resources import Store

        key = (id(src), id(dst))
        queue = self._landing.get(key)
        if queue is None:
            queue = Store(self.env)
            ingress_queue = Store(self.env)
            self._landing[key] = queue
            # Two chained stage workers per path: the core stage and the
            # ingress stage pipeline across messages while each stage
            # stays FIFO, so order is preserved at full stage rate.
            self.env.process(self._core_worker(src, dst, queue, ingress_queue))
            self.env.process(self._ingress_worker(dst, ingress_queue))
        return queue

    def _core_worker(self, src, dst, queue, ingress_queue):
        """Stage 1: propagation wait + (optional) shared-core traversal.

        While a partition cuts this (src, dst) path the worker parks on
        the fabric's heal event, holding the message (and everything
        queued behind it, preserving order) until connectivity returns.
        """
        while True:
            (arrival_at, wire_bytes, priority, deliver,
             crosses_core) = yield queue.get()
            wait = arrival_at - self.env.now
            if wait > 0:
                yield self.env.timeout(wait)
            while self.partitioned(src, dst):
                yield self._healed()
            if crosses_core and self.core is not None:
                yield from self.core.transfer(wire_bytes, priority=priority)
            ingress_queue.put((wire_bytes, priority, deliver))

    def _ingress_worker(self, dst: "PhysicalNic", ingress_queue):
        """Stage 2: destination-NIC ingress serialisation + delivery."""
        while True:
            wire_bytes, priority, deliver = yield ingress_queue.get()
            yield from dst.ingress.transfer(wire_bytes, priority=priority)
            deliver()

    def path_latency(self, wire_bytes: float, rate_bytes: float) -> float:
        """Closed-form uncontended one-way latency (for sanity checks)."""
        return wire_bytes / rate_bytes * 2 + self.one_way_latency_s

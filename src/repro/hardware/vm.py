"""Virtual machines: deployment cases (c) and (d) of the paper's Fig. 2.

Containers may run inside VMs on a cloud.  The VM model keeps a single
unified CPU/memory substrate (the physical host's), adding the
virtualisation taxes where they belong:

* vCPU work executes on the host's cores (no separate scheduler model —
  the paper's cases pin VMs to dedicated cores anyway);
* network traffic leaving a VM through the paravirtual path pays the
  virtio/vswitch per-byte and per-segment surcharge;
* with SR-IOV, RDMA and DPDK bypass that tax (which is what makes
  FreeFlow's kernel-bypass plan viable inside clouds).

The fabric controller (:mod:`repro.cluster.fabric`) is the authority on
which physical machine a VM occupies — FreeFlow's orchestrator queries it,
exactly as §4 prescribes ("if containers are running on top of VMs, the
network orchestrator also needs to know which physical machine each VM is
located (from fabric controllers)").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .host import Host
from .specs import VmSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment

__all__ = ["VirtualMachine"]


class VirtualMachine:
    """A VM instance placed on a physical host."""

    def __init__(
        self,
        host: Host,
        name: str,
        spec: Optional[VmSpec] = None,
    ) -> None:
        self.env = host.env
        self.host = host
        self.name = name
        self.spec = spec or VmSpec()
        host.vms.append(self)

    @property
    def sriov(self) -> bool:
        """True when the VM has SR-IOV passthrough to the physical NIC."""
        return self.spec.sriov and self.host.nic.rdma_capable

    def same_vm(self, other: Optional["VirtualMachine"]) -> bool:
        return other is self

    def same_machine(self, other: "VirtualMachine") -> bool:
        """True when both VMs share a physical host."""
        return other.host is self.host

    # -- virtualisation taxes ------------------------------------------------

    def virtio_cost_cycles(self, payload: int, segments: int) -> float:
        """CPU cycles of the paravirtual network path for one message."""
        return (
            payload * self.spec.virtio_cycles_per_byte
            + segments * self.spec.virtio_per_segment_cycles
        )

    def virtio_tax(self, payload: int, segments: int, priority: int = 0):
        """Pay the virtio path for one message (generator).

        Skipped entirely for SR-IOV traffic — callers check :attr:`sriov`.
        """
        yield from self.host.cpu.execute(
            self.virtio_cost_cycles(payload, segments), priority=priority
        )
        yield self.env.timeout(self.spec.virtio_latency_s)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<VirtualMachine {self.name} on {self.host.name}>"

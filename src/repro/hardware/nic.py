"""Physical NIC model: link pipes plus an RDMA message engine.

The NIC owns three contended parts:

* ``egress`` / ``ingress`` — the wire itself (serialisation at link rate),
  shared by every transport that touches the network (kernel TCP, DPDK,
  RDMA), so cross-transport interference is captured naturally;
* ``engine`` — the embedded processor that services RDMA work requests.
  It caps small-message op rate and is the "NIC CPU" whose utilisation
  the paper's §2.4 sketch ("Figure 2(c)") plots.

Host-side per-byte work for RDMA is zero (that is the whole point of
RDMA); bytes reach the NIC via DMA through the host memory bus, which is
why huge RDMA flows still show up as memory-bus traffic in the multi-pair
experiment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..sim.monitor import IntervalRecorder
from ..sim.resources import Resource
from .bandwidth import BandwidthPipe
from .specs import NicSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment
    from .host import Host
    from .link import Fabric

__all__ = ["PhysicalNic"]


class PhysicalNic:
    """One physical port, modelled on the paper's 40 Gb/s Mellanox CX3."""

    def __init__(
        self,
        env: "Environment",
        spec: Optional[NicSpec] = None,
        name: str = "eth0",
    ) -> None:
        self.env = env
        self.spec = spec or NicSpec()
        self.name = name
        self.host: Optional["Host"] = None
        self.fabric: Optional["Fabric"] = None
        self.egress = BandwidthPipe(
            env,
            rate_bytes=self.spec.goodput_bytes,
            chunk_bytes=self.spec.chunk_bytes,
            name=f"{name}.egress",
        )
        self.ingress = BandwidthPipe(
            env,
            rate_bytes=self.spec.goodput_bytes,
            chunk_bytes=self.spec.chunk_bytes,
            name=f"{name}.ingress",
        )
        self._engine = Resource(env, capacity=1)
        self.engine_recorder = IntervalRecorder(env)

    # -- capabilities -------------------------------------------------------

    @property
    def rdma_capable(self) -> bool:
        return self.spec.rdma_capable

    @property
    def dpdk_capable(self) -> bool:
        return self.spec.dpdk_capable

    @property
    def link_rate_bytes(self) -> float:
        return self.spec.link_rate_bytes

    # -- RDMA engine ----------------------------------------------------------

    def engine_service(self, nbytes: float = 0.0, priority: int = 0):
        """Occupy the NIC processor for one work request (generator).

        Service time is the fixed per-op cost plus any modelled per-byte
        engine work (zero for CX3-class offload).
        """
        seconds = self.spec.rdma_engine_op_seconds
        if self.spec.rdma_engine_cycles_per_byte:
            # Engine "cycles" are expressed directly in seconds/byte via
            # the op clock; treat the constant as seconds per byte here.
            seconds += nbytes * self.spec.rdma_engine_cycles_per_byte
        with self._engine.request(priority=priority) as claim:
            yield claim
            self.engine_recorder.busy()
            try:
                yield self.env.timeout(seconds)
            finally:
                self.engine_recorder.idle()

    def engine_utilisation(self) -> float:
        """Mean busy fraction of the NIC processor (the paper's NIC CPU)."""
        return self.engine_recorder.utilisation()

    def link_utilisation(self) -> float:
        """Mean busy fraction of the egress wire."""
        return self.egress.utilisation()

    def utilisation_snapshot(self) -> dict:
        """All three busy fractions at once (engine, egress wire,
        ingress wire) — what the live ``repro top`` view renders."""
        return {
            "engine": self.engine_recorder.utilisation(),
            "egress": self.egress.utilisation(),
            "ingress": self.ingress.utilisation(),
        }

    def reset_accounting(self) -> None:
        self.engine_recorder.reset()
        self.egress.reset_accounting()
        self.ingress.reset_accounting()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        host = self.host.name if self.host is not None else "?"
        return f"<PhysicalNic {host}/{self.name} {self.spec.model}>"

"""k-ary fat-tree fabric: multi-path topology behind the Fabric API.

The plain :class:`~repro.hardware.link.Fabric` is one non-blocking
switch — structurally incapable of path collisions.  This module builds
the standard k-ary fat-tree instead (k pods, each with k/2 edge and k/2
aggregation switches; (k/2)^2 core switches; k^3/4 host ports) with an
individual :class:`FabricLink` per hop, so congestion *emerges* from
per-link contention: two flows ECMP-hashed onto the same agg→core link
really do halve each other.

:class:`FatTreeFabric` keeps the existing transfer contract — callers
still invoke ``fabric.send(src_nic, dst_nic, wire_bytes, deliver)`` and
pay the source NIC's egress serialisation themselves — so hosts, NICs
and every transport are untouched.  Behind that API each message:

1. gets a route from the :class:`~repro.netstack.pathsel.PathSelector`
   (ECMP on the flow key, re-hashed at flowlet boundaries);
2. traverses the hop sequence through per-link FIFO queues, paying each
   link's store-and-forward latency and serialisation (pipelined across
   messages, like the base fabric's staged workers);
3. lands in a per-(src, dst) delivery stage that honours partitions
   (parked, not dropped — same reliable-link-layer semantics as the
   base class) and pays the destination NIC's ingress.

**Failures.** ``fail_link`` kills both directions of a cable: queued
messages are drained and deterministically detoured, new selections
avoid the dead hops (the topology version bump invalidates cached
paths), and a message already being serialised finishes its hop (the
frame is on the wire).  Every forced detour ends the flowlet, so the
delivery-side :class:`FlowletTracer` can assert the fabric invariant:
**no reordering within a flowlet, ever**.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..telemetry.registry import counter_inc
from .bandwidth import BandwidthPipe
from .link import Fabric
from .specs import NicSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.scheduler import Environment
    from .nic import PhysicalNic

__all__ = ["FabricLink", "SwitchNode", "FatTreeTopology", "FatTreeFabric",
           "FlowletTracer"]

#: Link tier labels, in traversal order from the host outward.
TIERS = ("edge-agg", "agg-core")


class SwitchNode:
    """One switch: position in the tree, no behaviour of its own."""

    __slots__ = ("name", "kind", "pod", "index", "group")

    def __init__(self, name: str, kind: str, pod: int = -1,
                 index: int = -1, group: int = -1) -> None:
        self.name = name
        #: "edge" | "agg" | "core"
        self.kind = kind
        #: Pod number (edge/agg only).
        self.pod = pod
        #: Position within the pod tier (edge/agg) or within the core
        #: group (core).
        self.index = index
        #: For cores: which agg index they connect to in every pod.
        self.group = group

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SwitchNode {self.name}>"


class FabricLink:
    """One *directed* inter-switch link: a pipe plus liveness state.

    A physical cable is two of these (one per direction);
    :meth:`FatTreeTopology.fail_cable` takes both down together.
    """

    __slots__ = ("name", "src", "dst", "tier", "pipe", "up", "queue",
                 "assignments", "fails", "heals")

    def __init__(self, env: "Environment", src: SwitchNode, dst: SwitchNode,
                 tier: str, rate_bytes: float, chunk_bytes: int) -> None:
        self.name = f"{src.name}->{dst.name}"
        self.src = src
        self.dst = dst
        self.tier = tier
        self.pipe = BandwidthPipe(env, rate_bytes=rate_bytes,
                                  chunk_bytes=chunk_bytes, name=self.name)
        self.up = True
        #: FIFO of :class:`_Transit` waiting for this link (set by the
        #: owning fabric when it starts the link's worker).
        self.queue = None
        #: Flowlet path assignments that chose this link (collision
        #: accounting, bumped by the path selector).
        self.assignments = 0
        self.fails = 0
        self.heals = 0

    def utilisation(self) -> float:
        return self.pipe.utilisation()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "up" if self.up else "DOWN"
        return f"<FabricLink {self.name} {state}>"


class FatTreeTopology:
    """The switch/link graph of a k-ary fat-tree (no traffic logic).

    Parameters
    ----------
    k:
        Arity (even, >= 2).  Capacity is ``k^3 / 4`` host ports.
    link_rate_bytes:
        Capacity of every edge-agg link; defaults to the paper NIC's
        goodput so the tree is non-blocking relative to the hosts.
    core_rate_scale:
        Multiplier on agg-core link capacity — ``0.5`` models a 2:1
        oversubscribed core, the rack-locality knob.
    """

    def __init__(
        self,
        env: "Environment",
        k: int = 4,
        link_rate_bytes: Optional[float] = None,
        core_rate_scale: float = 1.0,
        chunk_bytes: int = 64 * 1024,
    ) -> None:
        if k < 2 or k % 2:
            raise ValueError(f"fat-tree arity k must be even and >= 2, got {k}")
        if core_rate_scale <= 0:
            raise ValueError(f"core_rate_scale must be positive, "
                             f"got {core_rate_scale}")
        self.env = env
        self.k = k
        self.radix = k // 2
        if link_rate_bytes is None:
            link_rate_bytes = NicSpec().goodput_bytes
        self.link_rate_bytes = float(link_rate_bytes)
        self.core_rate_scale = float(core_rate_scale)
        #: Bumped on every fail/heal; the path selector keys its cached
        #: routes on it, so a change invalidates every cached path.
        self.version = 0
        self.edges: list[list[SwitchNode]] = []
        self.aggs: list[list[SwitchNode]] = []
        self.cores: list[SwitchNode] = []
        self._links: dict[tuple[str, str], FabricLink] = {}
        radix = self.radix
        for pod in range(k):
            # Construction-time only: k pods, fixed for the topology's life.
            self.edges.append([  # simlint: disable=SIM004
                SwitchNode(f"edge{pod}.{i}", "edge", pod=pod, index=i)
                for i in range(radix)
            ])
            self.aggs.append([  # simlint: disable=SIM004
                SwitchNode(f"agg{pod}.{i}", "agg", pod=pod, index=i)
                for i in range(radix)
            ])
        for group in range(radix):
            for i in range(radix):
                # Construction-time only: (k/2)^2 cores, fixed thereafter.
                self.cores.append(  # simlint: disable=SIM004
                    SwitchNode(f"core{group}.{i}", "core",
                               index=i, group=group)
                )
        for pod in range(k):
            for edge in self.edges[pod]:
                for agg in self.aggs[pod]:
                    self._add_cable(edge, agg, "edge-agg",
                                    self.link_rate_bytes, chunk_bytes)
        core_rate = self.link_rate_bytes * self.core_rate_scale
        for core in self.cores:
            for pod in range(k):
                agg = self.aggs[pod][core.group]
                self._add_cable(agg, core, "agg-core",
                                core_rate, chunk_bytes)

    def _add_cable(self, a: SwitchNode, b: SwitchNode, tier: str,
                   rate_bytes: float, chunk_bytes: int) -> None:
        for src, dst in ((a, b), (b, a)):
            self._links[(src.name, dst.name)] = FabricLink(
                self.env, src, dst, tier, rate_bytes, chunk_bytes
            )

    # -- lookups -------------------------------------------------------------

    @property
    def host_capacity(self) -> int:
        return self.k ** 3 // 4

    def pod_aggs(self, pod: int) -> list[SwitchNode]:
        return self.aggs[pod]

    def agg_cores(self, agg: SwitchNode) -> list[SwitchNode]:
        """The cores wired to this aggregation switch (its group)."""
        radix = self.radix
        return self.cores[agg.index * radix:(agg.index + 1) * radix]

    def link(self, src: SwitchNode, dst: SwitchNode) -> FabricLink:
        return self._links[(src.name, dst.name)]

    def link_by_name(self, src_name: str, dst_name: str) -> FabricLink:
        try:
            return self._links[(src_name, dst_name)]
        except KeyError:
            raise ValueError(
                f"no fat-tree link {src_name} -> {dst_name}"
            ) from None

    def links(self) -> list[FabricLink]:
        """Every directed link, in deterministic construction order."""
        return list(self._links.values())

    def edge_for_port(self, port: int) -> SwitchNode:
        """The edge switch serving host attachment slot ``port``."""
        if not 0 <= port < self.host_capacity:
            raise ValueError(
                f"host port {port} out of range (capacity "
                f"{self.host_capacity})"
            )
        radix = self.radix
        pod, rest = divmod(port, radix * radix)
        return self.edges[pod][rest // radix]

    # -- failures ------------------------------------------------------------

    def fail_cable(self, a_name: str, b_name: str) -> list[FabricLink]:
        """Take both directions of the a<->b cable down.

        Returns the two directed links (already marked down); the
        owning fabric drains and detours their queued traffic.
        """
        pair = [self.link_by_name(a_name, b_name),
                self.link_by_name(b_name, a_name)]
        for link in pair:
            if link.up:
                link.up = False
                link.fails += 1
        self.version += 1
        return pair

    def heal_cable(self, a_name: str, b_name: str) -> list[FabricLink]:
        """Bring both directions of the a<->b cable back up."""
        pair = [self.link_by_name(a_name, b_name),
                self.link_by_name(b_name, a_name)]
        for link in pair:
            if not link.up:
                link.up = True
                link.heals += 1
        self.version += 1
        return pair

    def down_links(self) -> list[FabricLink]:
        return [link for link in self._links.values() if not link.up]

    # -- rollups -------------------------------------------------------------

    def tier_utilisation(self) -> dict[str, float]:
        """Mean busy fraction per link tier (the ``repro top`` rollup)."""
        sums = {tier: 0.0 for tier in TIERS}
        counts = {tier: 0 for tier in TIERS}
        for link in self._links.values():
            sums[link.tier] += link.utilisation()
            counts[link.tier] += 1
        return {
            tier: (sums[tier] / counts[tier] if counts[tier] else 0.0)
            for tier in TIERS
        }

    def link_utilisation(self) -> dict[str, float]:
        """Per-link busy fraction, keyed by directed link name."""
        return {
            link.name: link.utilisation()
            for link in self._links.values()
        }


class _Transit:
    """One message crossing the tree: route + bookkeeping, mutable."""

    __slots__ = ("src", "dst", "dst_edge", "wire_bytes", "priority",
                 "deliver", "path", "hop", "flow_key", "flowlet_key",
                 "seq", "ready_at")

    def __init__(self, src, dst, dst_edge, wire_bytes, priority, deliver,
                 route) -> None:
        self.src = src
        self.dst = dst
        self.dst_edge = dst_edge
        self.wire_bytes = wire_bytes
        self.priority = priority
        self.deliver = deliver
        self.path = route.path
        self.hop = 0
        self.flowlet_key = route.flowlet_key
        self.seq = route.seq
        self.ready_at = 0.0


class FlowletTracer:
    """Delivery-order watchdog for the fabric invariant.

    Per flowlet key, deliveries must arrive in send-sequence order; any
    inversion is recorded (bounded) and counted.  State is a bounded
    FIFO-evicted map, so the tracer costs O(1) memory over any run.
    """

    MAX_FLOWLETS = 4096
    MAX_VIOLATIONS = 64

    def __init__(self) -> None:
        self._last_seq: dict = {}
        self.checked = 0
        self.reorders = 0
        self.violations: list[tuple] = []

    def observe(self, flowlet_key, seq: int) -> None:
        self.checked += 1
        last = self._last_seq.get(flowlet_key)
        if last is not None and seq < last:
            self.reorders += 1
            counter_inc("repro.fabric.reorders")
            if len(self.violations) < self.MAX_VIOLATIONS:
                # Bounded above by MAX_VIOLATIONS.
                self.violations.append(  # simlint: disable=SIM004
                    (flowlet_key, last, seq)
                )
            return
        self._last_seq[flowlet_key] = max(seq, last or 0)
        while len(self._last_seq) > self.MAX_FLOWLETS:
            self._last_seq.pop(next(iter(self._last_seq)))


class FatTreeFabric(Fabric):
    """Multi-path fabric: the Fabric API over a k-ary fat-tree.

    ``send`` accepts an optional ``flow`` argument — any hashable flow
    identity (e.g. a 5-tuple) ECMP-hashed by the path selector.  The
    existing transports never pass it, so their traffic hashes on the
    (src host, dst host) pair, which is exactly the granularity the
    base fabric already kept FIFO.
    """

    def __init__(
        self,
        env: "Environment",
        k: int = 4,
        switch_latency_s: float = 0.6e-6,
        propagation_s: float = 0.4e-6,
        link_rate_bytes: Optional[float] = None,
        core_rate_scale: float = 1.0,
        flowlet_gap_s: Optional[float] = None,
        max_flows: int = 4096,
        chunk_bytes: int = 64 * 1024,
    ) -> None:
        # Base init registers the fabric with the telemetry registry,
        # so the topology must exist first.
        self.topology = FatTreeTopology(
            env, k=k, link_rate_bytes=link_rate_bytes,
            core_rate_scale=core_rate_scale, chunk_bytes=chunk_bytes,
        )
        from ..netstack.pathsel import FLOWLET_GAP_S, PathSelector

        if flowlet_gap_s is None:
            flowlet_gap_s = FLOWLET_GAP_S
        elif flowlet_gap_s == float("inf"):
            flowlet_gap_s = None  # plain ECMP: never re-hash
        self.selector = PathSelector(
            self.topology, flowlet_gap_s=flowlet_gap_s, max_flows=max_flows
        )
        self.tracer = FlowletTracer()
        #: NIC -> attachment port (edge assignment is port-order).
        self._ports: dict[int, int] = {}
        #: (src port, dst port) -> per-pair delivery Store.
        self._arrivals: dict[tuple[int, int], object] = {}
        super().__init__(env, switch_latency_s=switch_latency_s,
                         propagation_s=propagation_s)
        from ..sim.resources import Store

        for link in self.topology.links():
            link.queue = Store(env)
            env.process(self._link_worker(link))

    # -- attachment ----------------------------------------------------------

    def attach(self, nic: "PhysicalNic") -> None:
        port = len(self._nics)
        if port >= self.topology.host_capacity:
            raise ValueError(
                f"fat-tree k={self.topology.k} is full "
                f"({self.topology.host_capacity} host ports)"
            )
        super().attach(nic)
        self._ports[id(nic)] = port

    def port_of(self, nic: "PhysicalNic") -> int:
        return self._ports[id(nic)]

    def edge_of(self, nic: "PhysicalNic") -> SwitchNode:
        return self.topology.edge_for_port(self._ports[id(nic)])

    def pod_of(self, nic: "PhysicalNic") -> int:
        return self.edge_of(nic).pod

    def _flow_key(self, src, dst, flow):
        """Stable flow identity (never id()-based: must be the same
        across runs so path assignments are byte-identical)."""
        key = (self._ports[id(src)], self._ports[id(dst)])
        return key if flow is None else key + (flow,)

    # -- the transfer API ----------------------------------------------------

    def send(
        self,
        src: "PhysicalNic",
        dst: "PhysicalNic",
        wire_bytes: float,
        deliver: Callable[[], None],
        priority: int = 0,
        flow=None,
    ):
        """Carry ``wire_bytes`` across the tree (generator).

        Same contract as :meth:`Fabric.send`: the caller pays egress
        serialisation; the rest happens in staged workers so
        back-to-back sends pipeline.
        """
        if src.fabric is not self or dst.fabric is not self:
            raise ValueError("both NICs must be attached to this fabric")
        if src is dst:
            raise ValueError("use host-local channels for loopback traffic")
        yield from src.egress.transfer(wire_bytes, priority=priority)
        route = self.selector.route(
            self.env.now, self.edge_of(src), self.edge_of(dst),
            self._flow_key(src, dst, flow),
        )
        transit = _Transit(src, dst, self.edge_of(dst), wire_bytes,
                           priority, deliver, route)
        counter_inc("repro.fabric.messages")
        self._forward(transit)

    # -- hop machinery -------------------------------------------------------

    def _forward(self, transit: _Transit) -> None:
        """Queue ``transit`` at its next hop (or the delivery stage)."""
        while transit.hop < len(transit.path):
            link = transit.path[transit.hop]
            if not link.up:
                self.selector.detour(transit, transit.hop)
                continue
            transit.ready_at = self.env.now + self.one_way_latency_s
            link.queue.put(transit)
            return
        transit.ready_at = self.env.now + self.one_way_latency_s
        self._arrival_queue(transit.src, transit.dst).put(transit)

    def _link_worker(self, link: FabricLink):
        """FIFO server for one directed link (store-and-forward)."""
        while True:
            transit = yield link.queue.get()
            if not link.up:
                # Drained-and-missed race guard: re-route instead of
                # transmitting over a dead link.
                self.selector.detour(transit, transit.hop)
                self._forward(transit)
                continue
            wait = transit.ready_at - self.env.now
            if wait > 0:
                yield self.env.timeout(wait)
            yield from link.pipe.transfer(transit.wire_bytes,
                                          priority=transit.priority)
            transit.hop += 1
            self._forward(transit)

    def _arrival_queue(self, src: "PhysicalNic", dst: "PhysicalNic"):
        """Per-(src, dst) delivery stage (partition park + NIC ingress)."""
        from ..sim.resources import Store

        key = (self._ports[id(src)], self._ports[id(dst)])
        queue = self._arrivals.get(key)
        if queue is None:
            queue = Store(self.env)
            self._arrivals[key] = queue
            self.env.process(self._delivery_worker(src, dst, queue))
        return queue

    def _delivery_worker(self, src, dst, queue):
        """Final stage: partition semantics, ingress wire, delivery."""
        while True:
            transit = yield queue.get()
            wait = transit.ready_at - self.env.now
            if wait > 0:
                yield self.env.timeout(wait)
            while self.partitioned(src, dst):
                yield self._healed()
            yield from dst.ingress.transfer(transit.wire_bytes,
                                            priority=transit.priority)
            self.tracer.observe(transit.flowlet_key, transit.seq)
            transit.deliver()

    # -- failures ------------------------------------------------------------

    def fail_link(self, a_name: str, b_name: str) -> None:
        """Kill the a<->b cable; queued traffic detours immediately.

        A message already being serialised on the link finishes its hop
        (the frame is on the wire); everything still queued is drained
        in FIFO order and re-forwarded through the detour machinery, so
        byte conservation holds and ordering within each (rerouted)
        flowlet is preserved.
        """
        pair = self.topology.fail_cable(a_name, b_name)
        counter_inc("repro.fabric.link_fails")
        for link in pair:
            for transit in link.queue.drain():
                self.selector.detour(transit, transit.hop)
                self._forward(transit)

    def heal_link(self, a_name: str, b_name: str) -> None:
        self.topology.heal_cable(a_name, b_name)
        counter_inc("repro.fabric.link_heals")

    def busiest_core_link(self) -> FabricLink:
        """The agg->core link with the most flowlet assignments."""
        candidates = [link for link in self.topology.links()
                      if link.tier == "agg-core"
                      and link.src.kind == "agg"]
        return max(candidates, key=lambda link: (link.assignments,
                                                 link.pipe.bytes_moved))

    # -- accounting ----------------------------------------------------------

    def reorders(self) -> int:
        return self.tracer.reorders

    def path_latency(self, wire_bytes: float, rate_bytes: float) -> float:
        """Closed-form uncontended inter-pod latency (sanity checks):
        egress + 4 store-and-forward hops + ingress, plus per-hop
        switching/propagation."""
        hops = 6  # egress wire, 4 links, ingress wire
        return (wire_bytes / rate_bytes * hops
                + self.one_way_latency_s * 5)

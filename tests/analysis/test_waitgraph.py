"""Static interprocedural wait/credit analysis: SIM010, SIM011, SIM012.

The seeded deadlock fixture (credits returned in the reverse of the
documented acquisition order) must be caught here by SIM010 *and* by
the runtime wait-for graph (``test_waitfor.py``) — the two halves of
the same checker.
"""

from __future__ import annotations

import textwrap

from repro.analysis.core import LintContext, lint_paths, lint_source


def lint(source: str, path: str = "repro/core/example.py",
         rule: str = None):
    ctx = LintContext()
    findings = lint_source(textwrap.dedent(source), path, ctx=ctx)
    if rule is not None:
        findings = [f for f in findings if f.rule == rule]
    return findings


REVERSED_CREDIT_ORDER = """
class Peer:
    def __init__(self, env):
        self._tx_lock = Resource(env, capacity=1)
        self._credits = Tank(env, capacity=64, initial=64)

    def drain(self):
        with self._tx_lock.request() as claim:
            yield claim
            yield self._credits.get(1)
            self._staged += 1

    def refill(self):
        yield self._credits.get(64)
        with self._tx_lock.request() as claim:
            yield claim
            yield self._credits.put(64)
"""


# -- SIM010: hold-and-wait cycles -------------------------------------------


def test_sim010_reversed_credit_order_names_both_resources():
    """The seeded fixture: drain holds the lock then draws credits;
    refill draws credits then takes the lock.  Both sites report, and
    every message names the full ring."""
    findings = lint(REVERSED_CREDIT_ORDER, rule="SIM010")
    assert len(findings) == 2
    for finding in findings:
        assert "Peer._tx_lock" in finding.message
        assert "Peer._credits" in finding.message


def test_sim010_silent_on_consistent_order():
    findings = lint(
        """
        class Peer:
            def __init__(self, env):
                self._tx_lock = Resource(env, capacity=1)
                self._credits = Tank(env, capacity=64, initial=64)

            def drain(self):
                with self._tx_lock.request() as claim:
                    yield claim
                    yield self._credits.get(1)
                    self._staged += 1

            def refill(self):
                with self._tx_lock.request() as claim:
                    yield claim
                    yield self._credits.get(64)
                    yield self._credits.put(64)
        """,
        rule="SIM010",
    )
    assert findings == []


def test_sim010_fires_on_lock_self_reentry():
    """A non-reentrant FIFO lock re-requested while held is a
    self-deadlock even with no second resource involved."""
    findings = lint(
        """
        class Worker:
            def __init__(self, env):
                self._lock = Resource(env, capacity=1)

            def outer(self):
                with self._lock.request() as outer_claim:
                    yield outer_claim
                    with self._lock.request() as inner_claim:
                        yield inner_claim
        """,
        rule="SIM010",
    )
    assert findings
    assert all("Worker._lock" in f.message for f in findings)


def test_sim010_sees_acquisitions_through_helper_calls():
    """The cycle only exists interprocedurally: ``locked_draw`` debits
    the tank via ``yield from self._draw()``."""
    findings = lint(
        """
        class Peer:
            def __init__(self, env):
                self._lock = Resource(env, capacity=1)
                self._credits = Tank(env, capacity=8, initial=8)

            def locked_draw(self):
                with self._lock.request() as claim:
                    yield claim
                    yield from self._draw()

            def _draw(self):
                yield self._credits.get(1)
                self._held += 1

            def refill(self):
                yield self._credits.get(8)
                with self._lock.request() as claim:
                    yield claim
                    yield self._credits.put(8)
        """,
        rule="SIM010",
    )
    assert findings
    assert any("Peer._credits" in f.message
               and "Peer._lock" in f.message for f in findings)


def test_sim010_pragma_suppresses():
    """A pragma on each participating edge site silences the cycle."""
    source = """
    class Peer:
        def __init__(self, env):
            self._tx_lock = Resource(env, capacity=1)
            self._credits = Tank(env, capacity=64, initial=64)

        def drain(self):
            with self._tx_lock.request() as claim:
                yield claim
                yield self._credits.get(1)  # simlint: disable=SIM010
                self._staged += 1

        def refill(self):
            yield self._credits.get(64)
            # simlint: disable=SIM010
            with self._tx_lock.request() as claim:
                yield claim
                yield self._credits.put(64)
    """
    assert lint(source, rule="SIM010") == []


# -- SIM011: unsafe holds across parks --------------------------------------


def test_sim011_fires_on_bare_request_held_across_park():
    findings = lint(
        """
        class Pump:
            def __init__(self, env):
                self._lock = Resource(env, capacity=1)
                self._inbox = Store(env)

            def pump(self):
                req = self._lock.request()
                yield req
                item = yield self._inbox.get()
                self._lock.release(req)
                return item
        """,
        rule="SIM011",
    )
    assert len(findings) == 1
    assert "Pump._lock" in findings[0].message


def test_sim011_silent_on_context_manager_hold():
    findings = lint(
        """
        class Pump:
            def __init__(self, env):
                self._lock = Resource(env, capacity=1)
                self._inbox = Store(env)

            def pump(self):
                with self._lock.request() as claim:
                    yield claim
                    item = yield self._inbox.get()
                return item
        """,
        rule="SIM011",
    )
    assert findings == []


def test_sim011_silent_when_released_in_finally():
    findings = lint(
        """
        class Pump:
            def __init__(self, env):
                self._lock = Resource(env, capacity=1)
                self._inbox = Store(env)

            def pump(self):
                req = self._lock.request()
                yield req
                try:
                    item = yield self._inbox.get()
                finally:
                    self._lock.release(req)
                return item
        """,
        rule="SIM011",
    )
    assert findings == []


# -- SIM012: debit/credit imbalance ------------------------------------------


def test_sim012_fires_on_debit_parked_before_banking():
    findings = lint(
        """
        class Sender:
            def __init__(self, env):
                self._credits = Tank(env, capacity=64, initial=64)
                self._wire = Store(env)

            def send(self, env, nbytes):
                yield self._credits.get(nbytes)
                yield env.timeout(1e-6)
                self._wire.put(nbytes)
        """,
        rule="SIM012",
    )
    assert len(findings) == 1
    assert "Sender._credits" in findings[0].message


def test_sim012_silent_when_banked_before_park():
    findings = lint(
        """
        class Sender:
            def __init__(self, env):
                self._credits = Tank(env, capacity=64, initial=64)
                self._wire = Store(env)

            def send(self, env, nbytes):
                yield self._credits.get(nbytes)
                self._wire.put(nbytes)
                yield env.timeout(1e-6)
        """,
        rule="SIM012",
    )
    assert findings == []


def test_sim012_silent_when_repaid_by_inverse_op():
    findings = lint(
        """
        class Sender:
            def __init__(self, env):
                self._credits = Tank(env, capacity=64, initial=64)

            def borrow(self, env, nbytes):
                yield self._credits.get(nbytes)
                yield self._credits.put(nbytes)
                yield env.timeout(1e-6)
        """,
        rule="SIM012",
    )
    assert findings == []


def test_sim012_window_tank_debits_by_put():
    """A bounded window tank (no ``initial``) is debited by ``put`` —
    the opposite polarity of a credit tank."""
    findings = lint(
        """
        class Ring:
            def __init__(self, env):
                self._ring = Tank(env, capacity=1024)
                self._wire = Store(env)

            def stage(self, env, nbytes):
                yield self._ring.put(nbytes)
                yield env.timeout(1e-6)
                self._wire.put(nbytes)
        """,
        rule="SIM012",
    )
    assert len(findings) == 1
    assert "Ring._ring" in findings[0].message


# -- integration -------------------------------------------------------------


def test_lint_paths_runs_the_project_pass(tmp_path):
    """``lint_paths`` builds one whole-program analysis over the file
    set and the per-file rules read their findings out of it."""
    bad = tmp_path / "repro" / "peer.py"
    bad.parent.mkdir()
    bad.write_text(textwrap.dedent(REVERSED_CREDIT_ORDER))
    findings = lint_paths([str(bad)])
    # SIM012 also legitimately fires: refill parks on the lock with 64
    # un-banked credits drawn (an interrupt there leaks the window).
    assert sorted({f.rule for f in findings}) == ["SIM010", "SIM012"]


def test_waitgraph_rules_skip_test_files():
    findings = lint(REVERSED_CREDIT_ORDER,
                    path="tests/core/test_peer.py")
    assert [f for f in findings if f.rule == "SIM010"] == []

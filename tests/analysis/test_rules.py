"""Fixture pairs for every simlint rule: one that fires, one that stays
silent.  Each rule is exercised through :func:`repro.analysis.lint_source`
exactly as the CLI drives it (pragmas and path handling included)."""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source
from repro.analysis.core import LintContext
from repro.analysis.rules import RULES_BY_CODE


def lint(source: str, path: str = "repro/core/example.py",
         rule: str = None, known_families: set = None):
    ctx = LintContext(known_families=known_families)
    findings = lint_source(textwrap.dedent(source), path, ctx=ctx)
    if rule is not None:
        findings = [f for f in findings if f.rule == rule]
    return findings


def codes(findings):
    return sorted({f.rule for f in findings})


# -- SIM001: determinism ----------------------------------------------------


def test_sim001_fires_on_wall_clock_and_random():
    findings = lint(
        """
        import random
        import time

        def stamp():
            return time.time()
        """,
        rule="SIM001",
    )
    assert len(findings) == 2
    assert findings[0].line == 2  # the import
    assert "time.time()" in findings[1].message


def test_sim001_silent_on_seeded_stream_and_sim_clock():
    findings = lint(
        """
        from repro.sim.rand import RandomStream

        def jitter(env, stream):
            return env.now + stream.uniform(0.0, 1e-6)
        """,
        rule="SIM001",
    )
    assert findings == []


def test_sim001_allowlists_the_rand_module_itself():
    source = "import random\n"
    assert lint(source, path="src/repro/sim/rand.py", rule="SIM001") == []
    assert len(lint(source, path="repro/core/x.py", rule="SIM001")) == 1


# -- SIM002: lost event -----------------------------------------------------


def test_sim002_fires_on_discarded_event_in_generator():
    findings = lint(
        """
        def proc(env, store):
            env.timeout(1.0)
            store.get()
            yield env.timeout(2.0)
        """,
        rule="SIM002",
    )
    assert len(findings) == 2
    assert "timeout" in findings[0].message
    assert "get" in findings[1].message


def test_sim002_silent_when_yielded_stored_or_returned():
    findings = lint(
        """
        def proc(env, store):
            first = env.timeout(1.0)
            yield first
            yield store.get()
            return env.timeout(0.0)
        """,
        rule="SIM002",
    )
    assert findings == []


def test_sim002_ignores_non_generator_functions():
    # A plain function's return values are the caller's business.
    findings = lint(
        """
        def helper(env):
            env.timeout(1.0)
        """,
        rule="SIM002",
    )
    assert findings == []


# -- SIM003: yield-point atomicity ------------------------------------------


def test_sim003_fires_on_rmw_spanning_yield():
    findings = lint(
        """
        def drain(self, env):
            pending = self.pending
            yield env.timeout(1.0)
            self.pending = pending - 1
        """,
        rule="SIM003",
    )
    assert len(findings) == 1
    assert "self.pending" in findings[0].message


def test_sim003_silent_when_reread_after_yield_or_no_yield_between():
    findings = lint(
        """
        def fixed(self, env):
            yield env.timeout(1.0)
            pending = self.pending
            self.pending = pending - 1

        def no_yield_between(self, env):
            pending = self.pending
            self.pending = pending - 1
            yield env.timeout(1.0)
        """,
        rule="SIM003",
    )
    assert findings == []


# -- SIM004: unbounded growth ------------------------------------------------


def test_sim004_fires_on_unpruned_long_lived_list():
    findings = lint(
        """
        class Log:
            def __init__(self):
                self.entries = []

            def record(self, item):
                self.entries.append(item)
        """,
        rule="SIM004",
    )
    assert len(findings) == 1
    assert "self.entries" in findings[0].message


def test_sim004_silent_when_pruned_or_capped():
    findings = lint(
        """
        class Window:
            def __init__(self):
                self.entries = []

            def record(self, item):
                self.entries.append(item)
                if len(self.entries) > 100:
                    self.entries.pop(0)

        class Rolled:
            def __init__(self):
                self.entries = []

            def record(self, item):
                self.entries.append(item)

            def roll(self):
                self.entries = self.entries[-10:]
        """,
        rule="SIM004",
    )
    assert findings == []


def test_sim004_module_level_list():
    fired = lint(
        """
        EVENTS = []

        def note(e):
            EVENTS.append(e)
        """,
        rule="SIM004",
    )
    assert len(fired) == 1
    silent = lint(
        """
        EVENTS = []

        def note(e):
            EVENTS.append(e)

        def flush():
            EVENTS.clear()
        """,
        rule="SIM004",
    )
    assert silent == []


def test_sim004_pragma_suppresses_inline_and_comment_line():
    findings = lint(
        """
        class Log:
            def __init__(self):
                self.entries = []
                self.audit = []

            def record(self, item):
                self.entries.append(item)  # simlint: disable=SIM004

            def note(self, item):
                # Bounded by construction: callers cap at 10 entries.
                # simlint: disable=SIM004
                self.audit.append(item)
        """,
        rule="SIM004",
    )
    assert findings == []


# -- SIM005: telemetry naming ------------------------------------------------


def test_sim005_fires_on_malformed_metric_and_kind():
    findings = lint(
        """
        def bump(emit, env):
            counter_inc("repro.Socket.Sends")
            counter_inc("other.socket.sends")
            emit(env, "BadKind")
        """,
        rule="SIM005",
    )
    assert len(findings) == 3


def test_sim005_family_cross_check():
    source = """
        def bump():
            counter_inc("repro.sokcet.sends")
            counter_inc("repro.socket.sends")
        """
    fired = lint(source, rule="SIM005",
                 known_families={"repro.socket"})
    assert len(fired) == 1
    assert "repro.sokcet" in fired[0].message
    # Without a known-family set the cross-check is disabled.
    assert lint(source, rule="SIM005") == []


def test_sim005_silent_on_well_named_sites():
    findings = lint(
        """
        def bump(emit, env, registry, host):
            counter_inc("repro.socket.sends")
            registry.gauge(f"repro.host.{host}.cpu_pct")
            emit(env, "flow.rebind", generation=2)
        """,
        rule="SIM005",
        known_families={"repro.socket", "repro.host"},
    )
    assert findings == []


# -- SIM006: flow-state ownership --------------------------------------------


def test_sim006_fires_outside_flows_module():
    findings = lint(
        """
        def hack(flow):
            flow.state = FlowState.BROKEN

        def sneak(conn, value):
            conn.state = value
        """,
        rule="SIM006",
    )
    assert len(findings) == 2


def test_sim006_silent_in_owner_module_and_for_other_state_machines():
    source = """
        def legal(flow):
            flow.state = FlowState.ACTIVE
        """
    assert lint(source, path="repro/core/flows.py", rule="SIM006") == []
    # verbs.py's QP state machine owns its own .state: self is not flow-ish
    # and the RHS never mentions FlowState.
    findings = lint(
        """
        class QueuePair:
            def modify(self, new_state):
                self.state = new_state
        """,
        rule="SIM006",
    )
    assert findings == []


# -- SIM007: bare assert -----------------------------------------------------


def test_sim007_fires_in_library_code_only():
    source = """
        def check(x):
            assert x > 0
        """
    fired = lint(source, path="repro/core/x.py", rule="SIM007")
    assert len(fired) == 1
    assert "python -O" in fired[0].message
    assert lint(source, path="tests/core/test_x.py", rule="SIM007") == []


def test_sim007_silent_on_typed_raise():
    findings = lint(
        """
        def check(x):
            if x <= 0:
                raise ValueError(f"x must be positive, got {x}")
        """,
        rule="SIM007",
    )
    assert findings == []


# -- SIM008: per-message cq.wait() in a loop ---------------------------------


def test_sim008_fires_on_cq_wait_in_loop():
    findings = lint(
        """
        def pump(qp):
            while True:
                wc = yield from qp.recv_cq.wait()
                handle(wc)
        """,
        rule="SIM008",
    )
    assert len(findings) == 1
    assert "wait_batch" in findings[0].message
    assert "recv_cq.wait()" in findings[0].snippet


def test_sim008_silent_on_wait_batch_and_one_shot_wait():
    findings = lint(
        """
        def pump(qp):
            while True:
                wcs = yield from qp.recv_cq.wait_batch()
                for wc in wcs:
                    handle(wc)

        def one_shot(cq, request):
            wc = yield from cq.wait()
            result = yield from request.wait()  # not a CQ
            return wc, result

        def other_waits(queue):
            while True:
                yield from queue.wait()  # not CQ-named
        """,
        rule="SIM008",
    )
    assert findings == []


def test_sim008_library_code_only_and_nested_loops_dedup():
    source = """
        def pump(cq):
            for _ in range(2):
                while True:
                    yield from cq.wait()
        """
    fired = lint(source, path="repro/core/x.py", rule="SIM008")
    assert len(fired) == 1  # nested loops report the call once
    assert lint(source, path="tests/core/test_x.py", rule="SIM008") == []


# -- SIM009: unbounded accumulation in telemetry/monitor paths ---------------


def test_sim009_fires_on_dynamic_key_dict_without_eviction():
    findings = lint(
        """
        class PerFlowCounts:
            def __init__(self):
                self.by_flow = {}
                self.meta = {}

            def record(self, flow, nbytes):
                self.by_flow[flow] = self.by_flow.get(flow, 0) + nbytes
                self.meta.setdefault(flow, []).append(nbytes)
        """,
        path="repro/telemetry/example.py",
        rule="SIM009",
    )
    assert len(findings) == 2
    assert {"self.by_flow" in f.message or "self.meta" in f.message
            for f in findings} == {True}
    assert "SpaceSaving" in findings[0].message


def test_sim009_silent_on_pruned_bounded_and_static_key_dicts():
    findings = lint(
        """
        class BoundedCounts:
            def __init__(self):
                self.memo = {}
                self.entries = {}
                self.totals = {}

            def record(self, key, value):
                if len(self.memo) >= 64:
                    self.memo.clear()
                self.memo[key] = value
                if len(self.entries) >= 32:
                    victim = min(self.entries)
                    del self.entries[victim]
                self.entries[key] = value
                self.totals["bytes"] = value  # fixed label set
        """,
        path="repro/telemetry/example.py",
        rule="SIM009",
    )
    assert findings == []


def test_sim009_scoped_to_telemetry_and_monitor_paths():
    source = """
        class Cache:
            def __init__(self):
                self.slots = {}

            def put(self, key, value):
                self.slots[key] = value
        """
    assert lint(source, path="repro/core/cache.py", rule="SIM009") == []
    assert lint(source, path="tests/telemetry/test_x.py",
                rule="SIM009") == []
    fired = lint(source, path="repro/sim/monitor.py", rule="SIM009")
    assert len(fired) == 1


# -- infrastructure ----------------------------------------------------------


def test_disable_file_pragma_and_rule_registry():
    findings = lint(
        """
        # simlint: disable-file=SIM007
        def check(x):
            assert x > 0
        """,
        rule="SIM007",
    )
    assert findings == []
    assert set(RULES_BY_CODE) == {
        "SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006",
        "SIM007", "SIM008", "SIM009", "SIM010", "SIM011", "SIM012",
    }


def test_syntax_error_is_reported_not_raised():
    findings = lint_source("def broken(:\n", "repro/x.py")
    assert [f.rule for f in findings] == ["SIM000"]

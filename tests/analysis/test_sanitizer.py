"""Runtime sanitizer: trip tests for each armed invariant, plus proof
that a sanitized run matches the unsanitized engine exactly."""

from __future__ import annotations

import heapq
from types import SimpleNamespace

import pytest

from repro.analysis import sanitizer, waitfor
from repro.core.flows import ChannelFactory, FlowConnection, FlowState
from repro.errors import SanitizerViolation
from repro.sim import Environment
from repro.transports.base import Lane, Mechanism


@pytest.fixture
def sanitized():
    """Arm the sanitizer for one test, restoring the prior state after.

    When the whole suite already runs with ``REPRO_SANITIZE=1`` the
    install() below is a no-op and teardown leaves it armed.
    """
    was_installed = sanitizer.installed()
    sanitizer.install()
    yield sanitizer
    if was_installed:
        sanitizer.reset_stats()
    else:
        sanitizer.uninstall()


@pytest.fixture
def waitfor_peeled():
    """Tests that uninstall/reinstall the sanitizer must unwind LIFO:
    when the suite armed the wait-for graph on top (REPRO_WAITFOR=1),
    peel it first and put it back after, or the sanitizer's uninstall
    would restore ``Environment.run`` out from under waitfor's wrapper."""
    had_waitfor = waitfor.installed()
    if had_waitfor:
        waitfor.uninstall()
    yield
    if had_waitfor:
        waitfor.install()


def pingpong_workload(env: Environment) -> float:
    def proc():
        for _ in range(50):
            yield env.timeout(1e-6)
        return env.now

    return env.run(until=env.process(proc()))


# -- engine checks -----------------------------------------------------------


def test_sanitized_run_matches_unsanitized_engine(waitfor_peeled, sanitized):
    env = Environment()
    result = pingpong_workload(env)
    processed = env.events_processed
    assert sanitized.stats()["engine_step"] >= processed

    sanitizer.uninstall()
    try:
        plain = Environment()
        assert pingpong_workload(plain) == result
        assert plain.events_processed == processed
    finally:
        sanitizer.install()


def test_past_scheduled_event_trips(sanitized):
    env = Environment(initial_time=10.0)
    heapq.heappush(env._queue, (9.0, 1, next(env._eid), env.event()))
    with pytest.raises(SanitizerViolation, match="scheduled in the past"):
        env.run()


def test_past_event_trips_under_run_until_number(sanitized):
    env = Environment(initial_time=10.0)
    heapq.heappush(env._queue, (9.0, 1, next(env._eid), env.event()))
    with pytest.raises(SanitizerViolation, match="scheduled in the past"):
        env.run(until=20.0)


def test_urgent_event_at_current_time_is_legal(sanitized):
    """An event processed at t may schedule an URGENT event at the same t;
    only *time* must be monotone, not the full (time, priority, eid) key."""
    env = Environment()
    log = []

    def proc():
        yield env.timeout(1e-6)
        interrupt = env.event()
        interrupt._ok = True
        interrupt._value = None
        interrupt._add_callback(lambda _e: log.append(env.now))
        env.schedule(interrupt, delay=0.0, priority=0)
        yield env.timeout(1e-6)

    env.run(until=env.process(proc()))
    assert log == [1e-6]


# -- conservation checks -----------------------------------------------------


def make_lane(env: Environment) -> Lane:
    return Lane(env, Mechanism.SHM)


def test_adopt_conservation_holds_for_real_lanes(sanitized):
    env = Environment()
    src, dst = make_lane(env), make_lane(env)
    message = src.make_message(4096)
    before = sanitized.stats().get("lane_adopt", 0)
    dst.adopt(message)
    assert dst.stats.messages_sent == 1
    assert dst.stats.messages_delivered == 1
    assert dst.stats.payload_bytes == 4096
    assert sanitized.stats()["lane_adopt"] == before + 1


def test_transplant_conservation_holds_for_real_lanes(sanitized):
    env = Environment()
    old = SimpleNamespace(lane_ab=make_lane(env), lane_ba=make_lane(env))
    new = SimpleNamespace(lane_ab=make_lane(env), lane_ba=make_lane(env))
    for lane, count in ((old.lane_ab, 3), (old.lane_ba, 1)):
        for _ in range(count):
            lane.inbox.items.append(lane.make_message(100))
    factory = SimpleNamespace(transplanted_messages=0)

    moved = ChannelFactory.transplant(factory, old, new)

    assert moved == 4
    assert factory.transplanted_messages == 4
    assert not old.lane_ab.inbox.items and not old.lane_ba.inbox.items
    assert len(new.lane_ab.inbox.items) == 3
    assert new.lane_ba.stats.messages_delivered == 1


def test_transplant_trips_when_new_lane_drops_messages(sanitized):
    env = Environment()

    class DroppingLane:
        """A buggy adoptive lane: acknowledges nothing it is handed."""

        def __init__(self):
            self.inbox = SimpleNamespace(items=[])
            self.stats = SimpleNamespace(messages_delivered=0)
            self.mechanism = Mechanism.TCP

        def adopt(self, message):
            pass

    old = SimpleNamespace(lane_ab=make_lane(env), lane_ba=make_lane(env))
    old.lane_ab.inbox.items.append(old.lane_ab.make_message(100))
    new = SimpleNamespace(lane_ab=DroppingLane(), lane_ba=DroppingLane())
    factory = SimpleNamespace(transplanted_messages=0)

    with pytest.raises(SanitizerViolation, match="adopted 0 message"):
        ChannelFactory.transplant(factory, old, new)


# -- flow-state ownership ----------------------------------------------------


def test_flow_state_guard_allows_transition_api_only(sanitized):
    flow = FlowConnection("a", "b", channel=None, decision=None)
    assert flow.state is FlowState.RESOLVING

    flow._transition(FlowState.ACTIVE, "test")  # sanctioned path
    assert flow.state is FlowState.ACTIVE

    with pytest.raises(SanitizerViolation, match="FlowTable"):
        flow.state = FlowState.BROKEN
    # The guarded write never happened.
    assert flow.state is FlowState.ACTIVE


def test_flow_created_before_install_still_guarded(waitfor_peeled):
    was_installed = sanitizer.installed()
    if was_installed:
        sanitizer.uninstall()
    flow = FlowConnection("a", "b", channel=None, decision=None)
    sanitizer.install()
    try:
        assert flow.state is FlowState.RESOLVING
        with pytest.raises(SanitizerViolation):
            flow.state = FlowState.CLOSED
    finally:
        if not was_installed:
            sanitizer.uninstall()


# -- install / uninstall -----------------------------------------------------


def test_install_is_idempotent_and_uninstall_restores(waitfor_peeled):
    was_installed = sanitizer.installed()
    if was_installed:
        sanitizer.uninstall()
    plain_step = Environment.step
    plain_run = Environment.run
    try:
        sanitizer.install()
        sanitizer.install()  # no-op, must not re-wrap
        assert Environment.step is not plain_step
        sanitizer.uninstall()
        assert Environment.step is plain_step
        assert Environment.run is plain_run
        assert not hasattr(FlowConnection, "state") or (
            not isinstance(FlowConnection.__dict__.get("state"), property))
        # A flow created while armed keeps a readable plain attribute.
        assert sanitizer.stats() == {"installed": False}
    finally:
        if was_installed:
            sanitizer.install()


def test_stats_counters_accumulate(sanitized):
    sanitizer.reset_stats()
    env = Environment()
    pingpong_workload(env)
    stats = sanitized.stats()
    assert stats["installed"] is True
    assert stats["violations"] == 0
    assert stats["engine_step"] == env.events_processed

"""The simlint CLI contract: repo-clean gate, baseline workflow, formats."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import cli
from repro.analysis.core import (
    Finding,
    lint_paths,
    load_baseline,
    partition,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / ".simlint-baseline.json"


def test_lint_exits_zero_on_head():
    """The acceptance gate: HEAD is clean against the checked-in baseline."""
    code = cli.main(["--fail-on-new", str(PACKAGE),
                     "--baseline", str(BASELINE)])
    assert code == 0


def test_head_baseline_is_small_and_justified():
    """The baseline only carries the known append-only registries and the
    MPI pump's deliberate per-message completion wait; every other
    historical finding was fixed or pragma'd with a reason."""
    baseline = load_baseline(BASELINE)
    assert 0 < len(baseline) <= 10
    assert all(rule in ("SIM004", "SIM008") for rule, _, _ in baseline)
    sim008 = [path for rule, path, _ in baseline if rule == "SIM008"]
    assert sim008 == ["repro/core/mpi.py"]


def test_new_finding_fails_and_write_baseline_accepts(tmp_path):
    bad = tmp_path / "repro" / "widget.py"
    bad.parent.mkdir()
    bad.write_text("import random\n")
    baseline = tmp_path / "base.json"

    assert cli.main([str(bad), "--baseline", str(baseline)]) == 1
    assert cli.main([str(bad), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
    # Baselined: the same finding no longer fails the gate...
    assert cli.main([str(bad), "--baseline", str(baseline),
                     "--fail-on-new"]) == 0
    # ...but a fresh violation still does.
    bad.write_text("import random\nimport secrets\n")
    assert cli.main([str(bad), "--baseline", str(baseline),
                     "--fail-on-new"]) == 1
    # And --no-baseline surfaces everything again.
    assert cli.main([str(bad), "--baseline", str(baseline),
                     "--no-baseline"]) == 1


def test_baseline_fingerprints_survive_line_drift(tmp_path):
    path = tmp_path / "repro" / "mod.py"
    path.parent.mkdir()
    path.write_text("def f(x):\n    assert x\n")
    findings = lint_paths([path])
    assert [f.rule for f in findings] == ["SIM007"]
    baseline_file = tmp_path / "base.json"
    write_baseline(baseline_file, findings)

    # Move the offending line: same fingerprint, still baselined.
    path.write_text("import os\n\n\ndef f(x):\n    assert x\n")
    moved = lint_paths([path])
    new, known = partition(moved, load_baseline(baseline_file))
    assert new == [] and len(known) == 1


def test_json_format(tmp_path, capsys):
    bad = tmp_path / "repro" / "j.py"
    bad.parent.mkdir()
    bad.write_text("import random\n")
    code = cli.main([str(bad), "--no-baseline", "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["baselined"] == []
    assert payload["new"][0]["rule"] == "SIM001"
    assert payload["new"][0]["line"] == 1


def test_list_rules(capsys):
    assert cli.main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SIM001", "SIM004", "SIM007"):
        assert code in out


def test_explain_every_rule(capsys):
    from repro.analysis.rules import ALL_RULES

    for rule in ALL_RULES:
        assert cli.main(["--explain", rule.code]) == 0
        out = capsys.readouterr().out
        assert rule.code in out
        assert rule.summary in out
        # Every rule ships its minimal fixture pair.
        assert "Fires on:" in out
        assert "Silent on:" in out


def test_explain_is_case_insensitive(capsys):
    assert cli.main(["--explain", "sim010"]) == 0
    assert "SIM010" in capsys.readouterr().out


def test_explain_unknown_rule_exits_2(capsys):
    assert cli.main(["--explain", "SIM999"]) == 2
    err = capsys.readouterr().err
    assert "SIM999" in err and "SIM001-SIM012" in err


def test_rule_examples_are_self_consistent():
    """--explain's fixture pair is executable documentation: the bad
    snippet fires its own rule, the good one is silent on it."""
    from repro.analysis.core import LintContext, lint_source
    from repro.analysis.rules import ALL_RULES

    for rule in ALL_RULES:
        bad = lint_source(rule.example_bad, rule.example_path,
                          ctx=LintContext())
        assert rule.code in {f.rule for f in bad}, rule.code
        good = lint_source(rule.example_good, rule.example_path,
                           ctx=LintContext())
        assert rule.code not in {f.rule for f in good}, rule.code


def test_lint_subcommand_registered_in_module_main():
    from repro.__main__ import main as repro_main

    assert repro_main(["lint", "--list-rules"]) == 0


def test_finding_format_is_clickable():
    finding = Finding("SIM001", "repro/x.py", 3, 4, "msg", "import random")
    assert finding.format() == "repro/x.py:3:4: SIM001 msg"


@pytest.mark.parametrize("demo_arg", [["--help"], ["lint", "--help"]])
def test_help_paths_exit_cleanly(demo_arg):
    from repro.__main__ import main as repro_main

    with pytest.raises(SystemExit) as excinfo:
        repro_main(demo_arg)
    assert excinfo.value.code == 0

"""Instrumentation composition: sanitizer + profiler + wait-for graph.

All three instruments monkeypatch the same engine entry points
(``Environment.run`` and friends) by saving whatever they find at
install time.  That makes them composable in ANY install order as long
as uninstalls run LIFO — each layer restores exactly what it wrapped.
This file runs one workload under every permutation and proves (a)
every instrument observes the run, and (b) LIFO teardown restores the
pristine class methods.
"""

from __future__ import annotations

import itertools

import pytest

from repro.analysis import sanitizer, waitfor
from repro.sim import Environment
from repro.sim.process import Process
from repro.sim.resources import Resource, Store, Tank
from repro.telemetry import profiler as profiler_mod


def _run_workload():
    """Exercise every instrumented surface: engine stepping (sanitizer,
    profiler), a lock park, a blocking store get, and tank traffic
    (wait-for graph)."""
    env = Environment()
    lock = Resource(env, label="wl-lock")
    inbox = Store(env, label="wl-inbox")
    credits = Tank(env, capacity=16, initial=16, label="wl-credits")
    got = []

    def consumer():
        with lock.request() as claim:
            yield claim
            yield credits.get(4)
            item = yield inbox.get()
            got.append(item)
            yield credits.put(4)

    def contender():
        with lock.request() as claim:  # parks behind consumer
            yield claim

    def producer():
        yield env.timeout(1e-6)
        inbox.put("payload")

    env.process(consumer())
    env.process(contender())
    env.process(producer())
    env.run()
    assert got == ["payload"]


INSTRUMENTS = {
    "sanitizer": (sanitizer.install, sanitizer.uninstall),
    "profiler": (profiler_mod.install, profiler_mod.uninstall),
    "waitfor": (waitfor.install, waitfor.uninstall),
}


@pytest.fixture
def bare_engine():
    """Run the test with all suite-wide instrumentation stripped, so
    install-order permutations start from (and must restore) the
    pristine class methods."""
    had_sanitizer = sanitizer.installed()
    had_waitfor = waitfor.installed()
    had_profiler = profiler_mod.installed()
    saved_profiler = profiler_mod.uninstall() if had_profiler else None
    # LIFO relative to the REPRO_* arming order (sanitizer, then waitfor).
    if had_waitfor:
        waitfor.uninstall()
    if had_sanitizer:
        sanitizer.uninstall()
    yield
    if had_sanitizer:
        sanitizer.install()
    if had_waitfor:
        waitfor.install()
    if had_profiler:
        profiler_mod.install(saved_profiler)


@pytest.mark.parametrize(
    "order", list(itertools.permutations(INSTRUMENTS)),
    ids="+".join,
)
def test_any_install_order_composes_and_unwinds(order, bare_engine):
    pristine_step = Environment.step
    pristine_run = Environment.run
    pristine_process_step = Process._step

    profiler = None
    for name in order:
        result = INSTRUMENTS[name][0]()
        if name == "profiler":
            profiler = result
    try:
        _run_workload()
        assert sanitizer.stats()["engine_step"] > 0
        assert profiler.events_total > 0
        assert waitfor.stats()["parks"] >= 1
        assert waitfor.stats()["violations"] == 0
    finally:
        for name in reversed(order):
            INSTRUMENTS[name][1]()

    assert Environment.step is pristine_step
    assert Environment.run is pristine_run
    assert Process._step is pristine_process_step
    assert not sanitizer.installed()
    assert not profiler_mod.installed()
    assert not waitfor.installed()


def test_nested_uninstall_mid_stack_leaves_outer_layers_working(bare_engine):
    """The chaos runner arms waitfor inside an already-sanitized run and
    removes it first — the realistic partial unwind."""
    sanitizer.install()
    waitfor.install()
    _run_workload()
    waitfor.uninstall()
    _run_workload()  # sanitizer must still be live and functional
    assert sanitizer.stats()["engine_step"] > 0
    sanitizer.uninstall()
    assert not sanitizer.installed()

"""Runtime wait-for graph: park tracking, lock-cycle raises, tank
ownership ledgers, and the idle ownership report.

``test_waitgraph.py`` proves the *static* half catches the seeded
reversed-credit deadlock; this file proves the *runtime* half catches
the same fixture live, naming both resources in the ownership chain.
"""

from __future__ import annotations

import pytest

from repro.analysis import waitfor
from repro.errors import DeadlockDetected
from repro.sim import Environment
from repro.sim.resources import Resource, Store, Tank


@pytest.fixture
def armed():
    """Arm the wait-for graph for one test, restoring prior state after
    (a no-op install when the suite runs with REPRO_WAITFOR=1)."""
    was_installed = waitfor.installed()
    waitfor.install()
    waitfor.reset_stats()
    yield waitfor
    if was_installed:
        waitfor.reset_stats()
    else:
        waitfor.uninstall()


# -- lock cycles raise at park time ------------------------------------------


def test_abba_lock_cycle_raises_naming_both_locks(armed):
    env = Environment()
    lock_a = Resource(env, label="lock-a")
    lock_b = Resource(env, label="lock-b")

    def forward():
        with lock_a.request() as claim_a:
            yield claim_a
            yield env.timeout(1e-6)
            with lock_b.request() as claim_b:
                yield claim_b

    def backward():
        with lock_b.request() as claim_b:
            yield claim_b
            yield env.timeout(1e-6)
            with lock_a.request() as claim_a:
                yield claim_a

    env.process(forward())
    env.process(backward())
    with pytest.raises(DeadlockDetected) as exc_info:
        env.run()
    message = str(exc_info.value)
    assert "lock-a" in message and "lock-b" in message
    assert "forward" in message and "backward" in message
    assert armed.stats()["violations"] == 1


def test_lock_self_reentry_raises(armed):
    env = Environment()
    lock = Resource(env, label="non-reentrant")

    def reenter():
        with lock.request() as outer:
            yield outer
            with lock.request() as inner:
                yield inner

    env.process(reenter())
    with pytest.raises(DeadlockDetected, match="non-reentrant"):
        env.run()


def test_plain_lock_contention_does_not_raise(armed):
    """Sequential contention (no cycle) must pass untouched."""
    env = Environment()
    lock = Resource(env, label="shared")
    order = []

    def worker(tag):
        with lock.request() as claim:
            yield claim
            order.append(tag)
            yield env.timeout(1e-6)

    env.process(worker("first"))
    env.process(worker("second"))
    env.run()
    assert order == ["first", "second"]
    assert armed.stats()["parks"] >= 1
    assert armed.stats()["violations"] == 0


# -- tank backpressure: report, never raise ----------------------------------


def test_tank_backpressure_reports_instead_of_raising(armed):
    env = Environment()
    window = Tank(env, capacity=100, label="window")

    def filler():
        yield window.put(80)
        yield window.put(50)  # never fits: nobody drains

    env.process(filler())
    env.run()  # must NOT raise
    idle = armed.idle_report()
    assert idle is not None
    (parked,) = idle["parked"]
    assert parked["waits_on"] == "window"
    assert parked["kind"] == "tank-put"
    assert parked["amount"] == 50
    assert parked["holders"] == [
        {"process": "filler", "holds": "occupancy", "amount": 80}
    ]


def test_runtime_catches_reversed_credit_fixture(armed):
    """The seeded deadlock: drain holds the lock waiting for credits;
    refill drew every credit and waits for the lock.  Mixed lock/tank
    ring, so no raise — but the idle report must name BOTH resources
    and the full ownership chain."""
    env = Environment()
    credits = Tank(env, capacity=64, initial=64, label="peer.credits")
    tx_lock = Resource(env, label="peer.tx-lock")

    def drain():
        with tx_lock.request() as claim:
            yield claim
            yield env.timeout(1e-6)
            yield credits.get(64)

    def refill():
        yield credits.get(64)
        with tx_lock.request() as claim:
            yield claim
            yield credits.put(64)

    env.process(drain())
    env.process(refill())
    env.run()
    idle = armed.idle_report()
    assert idle is not None
    by_resource = {entry["waits_on"]: entry for entry in idle["parked"]}
    assert set(by_resource) == {"peer.credits", "peer.tx-lock"}
    credit_wait = by_resource["peer.credits"]
    assert credit_wait["process"] == "drain"
    assert credit_wait["holders"] == [
        {"process": "refill", "holds": "credit", "amount": 64}
    ]
    lock_wait = by_resource["peer.tx-lock"]
    assert lock_wait["process"] == "refill"
    assert lock_wait["holders"] == [
        {"process": "drain", "holds": "slot", "amount": None}
    ]


def test_ledger_repays_fifo(armed):
    """Credits return to the oldest outstanding debit first, matching
    the tank's own FIFO grant order."""
    env = Environment()
    credits = Tank(env, capacity=100, initial=100, label="credits")

    def taker(amount):
        yield credits.get(amount)
        yield env.timeout(1.0)  # hold the credit past the repayment

    env.process(taker(10))
    second = env.process(taker(5))

    def repay():
        yield env.timeout(1e-6)
        yield credits.put(12)  # clears the 10, leaves 3 of the 5

    env.process(repay())
    env.run()
    sign, entries = armed._state.ledgers[credits]
    assert sign == -1  # net credit holders outstanding
    assert [(p, n) for p, n in entries] == [(second, 3)]


# -- store waits and resume ---------------------------------------------------


def test_store_wait_purged_on_delivery(armed):
    env = Environment()
    inbox = Store(env, label="inbox")
    got = []

    def consumer():
        item = yield inbox.get()
        got.append(item)

    def producer():
        yield env.timeout(1e-6)
        inbox.put("payload")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == ["payload"]
    assert armed.idle_report() is None  # nothing left parked
    assert armed.stats()["parks"] >= 1


def test_live_report_names_store_wait(armed):
    env = Environment()
    inbox = Store(env, label="inbox")

    def consumer():
        yield inbox.get()

    env.process(consumer())
    env.run()
    snapshot = armed.report()
    (parked,) = snapshot["parked"]
    assert parked == {"process": "consumer", "waits_on": "inbox",
                      "kind": "store-get", "amount": None, "holders": []}


# -- lifecycle ----------------------------------------------------------------


def test_install_is_idempotent_and_uninstall_restores():
    was_installed = waitfor.installed()
    if was_installed:
        pytest.skip("suite runs with REPRO_WAITFOR=1; lifecycle covered "
                    "by test_instrumentation.py permutations")
    pristine_run = Environment.run
    pristine_get = Tank.get
    waitfor.install()
    waitfor.install()  # no double-wrap
    assert waitfor.installed()
    waitfor.uninstall()
    waitfor.uninstall()  # no-op
    assert not waitfor.installed()
    assert Environment.run is pristine_run
    assert Tank.get is pristine_get


def test_report_when_not_installed():
    if waitfor.installed():
        pytest.skip("suite runs with REPRO_WAITFOR=1")
    assert waitfor.report() == {"installed": False}
    assert waitfor.stats() == {"installed": False}
    assert waitfor.idle_report() is None

"""Tests for the baseline container-networking systems (S12)."""

import pytest

from repro.baselines import (
    BridgeModeNetwork,
    HostModeNetwork,
    NetVmNetwork,
    OverlayModeNetwork,
    RawRdmaNetwork,
    ShmIpcNetwork,
)
from repro.cluster import ContainerSpec
from repro.cluster.container import Container
from repro.errors import AddressError, TransportUnavailable
from repro.hardware import Host, NO_RDMA_TESTBED, VirtualMachine, to_gbps
from repro.sim import Environment


@pytest.fixture
def containers(host_pair):
    h1, h2 = host_pair
    a = Container(ContainerSpec("a"), h1)
    b = Container(ContainerSpec("b"), h1)
    c = Container(ContainerSpec("c"), h2)
    return a, b, c


def _roundtrip(env, channel, payload="x"):
    def flow():
        yield from channel.a.send(1000, payload=payload)
        message = yield from channel.b.recv()
        return message.payload

    process = env.process(flow())
    return env.run(until=process)


class TestHostMode:
    def test_connect_and_exchange(self, env, containers):
        net = HostModeNetwork(env)
        a, b, __ = containers
        conn = net.connect(a, b, 5000, 5001)
        assert _roundtrip(env, conn) == "x"

    def test_port_space_is_shared_per_host(self, env, containers):
        """The paper's complaint: one port 80 per host in host mode."""
        net = HostModeNetwork(env)
        a, b, __ = containers  # both on h1
        net.bind(a, 80)
        with pytest.raises(AddressError):
            net.bind(b, 80)

    def test_same_port_on_other_host_is_fine(self, env, containers):
        net = HostModeNetwork(env)
        a, __, c = containers
        net.bind(a, 80)
        net.bind(c, 80)  # different host, no conflict

    def test_release_frees_port(self, env, containers):
        net = HostModeNetwork(env)
        a, b, __ = containers
        net.bind(a, 80)
        net.release(a, 80)
        net.bind(b, 80)

    def test_rebinding_same_owner_ok(self, env, containers):
        net = HostModeNetwork(env)
        a, __, __ = containers
        net.bind(a, 80)
        net.bind(a, 80)

    def test_port_range_checked(self, env, containers):
        net = HostModeNetwork(env)
        with pytest.raises(AddressError):
            net.bind(containers[0], 0)
        with pytest.raises(AddressError):
            net.bind(containers[0], 70000)


class TestBridgeMode:
    def test_connect_and_exchange(self, env, containers):
        net = BridgeModeNetwork(env)
        a, b, __ = containers
        conn = net.connect(a, b)
        assert _roundtrip(env, conn) == "x"

    def test_one_bridge_per_host(self, env, containers):
        net = BridgeModeNetwork(env)
        a, b, c = containers
        assert net.bridge_for(a.host) is net.bridge_for(b.host)
        assert net.bridge_for(a.host) is not net.bridge_for(c.host)

    def test_bridge_forwarding_accounted(self, env, containers):
        net = BridgeModeNetwork(env)
        a, b, __ = containers
        conn = net.connect(a, b)
        _roundtrip(env, conn)
        assert net.bridge_for(a.host).messages_forwarded > 0


class TestOverlayMode:
    def test_attach_allocates_overlay_ip(self, env, containers):
        net = OverlayModeNetwork(env)
        a, __, __ = containers
        ip = net.attach(a)
        assert ip in net.pool
        assert net.ip_of(a) == ip

    def test_intra_host_exchange(self, env, containers):
        net = OverlayModeNetwork(env)
        a, b, __ = containers
        conn = net.connect(a, b)
        assert _roundtrip(env, conn) == "x"

    def test_inter_host_exchange_via_two_routers(self, env, containers):
        net = OverlayModeNetwork(env)
        a, __, c = containers
        conn = net.connect(a, c)
        assert _roundtrip(env, conn) == "x"
        assert net.router_for(a.host).messages_routed >= 1
        assert net.router_for(c.host).messages_routed >= 1

    def test_ip_survives_reattach(self, env, containers):
        net = OverlayModeNetwork(env)
        a, __, __ = containers
        assert net.attach(a) == net.attach(a)


class TestRawRdmaAndShmIpc:
    def test_raw_rdma_needs_capable_nics(self, env, fabric):
        plain = Host(env, "p1", spec=NO_RDMA_TESTBED, fabric=fabric)
        other = Host(env, "p2", fabric=fabric)
        a = Container(ContainerSpec("a"), plain)
        b = Container(ContainerSpec("b"), other)
        with pytest.raises(TransportUnavailable):
            RawRdmaNetwork().connect(a, b)

    def test_raw_rdma_exchange(self, env, containers):
        a, __, c = containers
        channel = RawRdmaNetwork().connect(a, c)
        assert _roundtrip(env, channel) == "x"

    def test_shm_ipc_requires_colocation(self, env, containers):
        a, __, c = containers
        with pytest.raises(TransportUnavailable):
            ShmIpcNetwork().connect(a, c)

    def test_shm_ipc_exchange(self, env, containers):
        a, b, __ = containers
        channel = ShmIpcNetwork().connect(a, b)
        assert _roundtrip(env, channel) == "x"


class TestNetVm:
    def _vm_containers(self, env, host_pair):
        h1, h2 = host_pair
        vm1, vm2 = VirtualMachine(h1, "vm1"), VirtualMachine(h1, "vm2")
        vm3 = VirtualMachine(h2, "vm3")
        a = Container(ContainerSpec("a"), h1, vm1)
        b = Container(ContainerSpec("b"), h1, vm2)
        c = Container(ContainerSpec("c"), h2, vm3)
        d = Container(ContainerSpec("d"), h1, vm1)
        return a, b, c, d

    def test_netvm_connects_colocated_vms(self, env, host_pair):
        a, b, __, __ = self._vm_containers(env, host_pair)
        channel = NetVmNetwork().connect(a, b)
        assert _roundtrip(env, channel) == "x"

    def test_netvm_rejects_cross_host(self, env, host_pair):
        a, __, c, __ = self._vm_containers(env, host_pair)
        with pytest.raises(TransportUnavailable):
            NetVmNetwork().connect(a, c)

    def test_netvm_rejects_same_vm(self, env, host_pair):
        a, __, __, d = self._vm_containers(env, host_pair)
        with pytest.raises(TransportUnavailable):
            NetVmNetwork().connect(a, d)

    def test_netvm_rejects_bare_metal(self, env, host_pair):
        h1, __ = host_pair
        bare = Container(ContainerSpec("bare"), h1)
        vm_bound = self._vm_containers(env, host_pair)[0]
        with pytest.raises(TransportUnavailable):
            NetVmNetwork().connect(bare, vm_bound)


class TestBaselineOrdering:
    """The headline ordering of the paper's Fig. 1 and §2 figures."""

    def _stream(self, env, channel, hosts, duration=0.08):
        got = {"bytes": 0}

        def sender():
            while env.now < duration:
                yield from channel.a.send(1 << 20)

        def receiver():
            while True:
                message = yield from channel.b.recv()
                got["bytes"] += message.size_bytes

        env.process(sender())
        env.process(receiver())
        env.run(until=duration)
        return to_gbps(got["bytes"] / duration)

    def test_intra_host_ordering(self):
        """shm > rdma > host > bridge > overlay, all intra-host."""
        rates = {}
        for name in ("shm", "rdma", "host", "bridge", "overlay"):
            env = Environment()
            h1 = Host(env, "h1")
            a = Container(ContainerSpec("a"), h1)
            b = Container(ContainerSpec("b"), h1)
            if name == "shm":
                channel = ShmIpcNetwork().connect(a, b)
            elif name == "rdma":
                channel = RawRdmaNetwork().connect(a, b)
            elif name == "host":
                channel = HostModeNetwork(env).connect(a, b, 1, 2)
            elif name == "bridge":
                channel = BridgeModeNetwork(env).connect(a, b)
            else:
                channel = OverlayModeNetwork(env).connect(a, b)
            rates[name] = self._stream(env, channel, [h1])
        assert (
            rates["shm"] > rates["rdma"] > rates["host"]
            > rates["bridge"] > rates["overlay"]
        )

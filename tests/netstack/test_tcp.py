"""Unit + behaviour tests for the kernel TCP path and its modes."""

import pytest

from repro.hardware import Host, Fabric, to_gbps
from repro.netstack import (
    EndpointAddr,
    Message,
    OverlayRouter,
    RoutingMesh,
    SoftwareBridge,
    TcpConnection,
    TcpMode,
    segment_count,
)
from repro.sim import Environment


def _connect(h1, h2, mode=TcpMode.HOST, **kw):
    return TcpConnection(
        h1, h2, EndpointAddr("a", 1), EndpointAddr("b", 1), mode=mode, **kw
    )


class TestPacketHelpers:
    def test_segment_count(self):
        assert segment_count(0, 1000) == 1
        assert segment_count(1, 1000) == 1
        assert segment_count(1000, 1000) == 1
        assert segment_count(1001, 1000) == 2

    def test_segment_count_bad_segment(self):
        with pytest.raises(ValueError):
            segment_count(10, 0)

    def test_message_validation(self):
        with pytest.raises(ValueError):
            Message(size_bytes=-1)

    def test_message_latency(self):
        message = Message(size_bytes=10)
        message.sent_at = 1.0
        message.delivered_at = 3.0
        assert message.latency == 2.0

    def test_endpoint_addr_str(self):
        assert str(EndpointAddr("10.0.0.1", 80)) == "10.0.0.1:80"


class TestTcpConnection:
    def test_send_recv_roundtrip(self, env, host, runner):
        conn = _connect(host, host)

        def flow():
            yield from conn.a.send(1000, payload="hello")
            message = yield from conn.b.recv()
            return message

        message = runner(flow())
        assert message.payload == "hello"
        assert message.size_bytes == 1000
        assert message.latency > 0

    def test_duplex_both_directions(self, env, host, runner):
        conn = _connect(host, host)

        def flow():
            yield from conn.a.send(100, payload="ping")
            ping = yield from conn.b.recv()
            yield from conn.b.send(100, payload="pong")
            pong = yield from conn.a.recv()
            return ping.payload, pong.payload

        assert runner(flow()) == ("ping", "pong")

    def test_messages_arrive_in_order(self, env, host):
        conn = _connect(host, host)
        received = []

        def sender():
            for i in range(20):
                yield from conn.a.send(50_000, payload=i)

        def receiver():
            for _ in range(20):
                message = yield from conn.b.recv()
                received.append(message.payload)

        env.process(sender())
        done = env.process(receiver())
        env.run(until=done)
        assert received == list(range(20))

    def test_window_backpressure_limits_inflight(self, env, host):
        """A one-message window forces lock-step with the receive stage:
        finishing N sends must take longer than with a large window."""

        def elapsed_for(window_bytes):
            local_env = Environment()
            local_host = Host(local_env, "h1")
            conn = TcpConnection(
                local_host, local_host,
                EndpointAddr("a", 1), EndpointAddr("b", 1),
                window_bytes=window_bytes,
            )

            def sender():
                for _ in range(20):
                    yield from conn.a.send(600)
                return local_env.now

            done = local_env.process(sender())
            return local_env.run(until=done)

        assert elapsed_for(600) > elapsed_for(4 * 1024 * 1024) * 1.2

    def test_bridge_mode_requires_bridges(self, env, host):
        with pytest.raises(ValueError):
            _connect(host, host, mode=TcpMode.BRIDGE)

    def test_overlay_mode_requires_routers(self, env, host):
        with pytest.raises(ValueError):
            _connect(host, host, mode=TcpMode.OVERLAY)

    def test_cross_environment_rejected(self, env):
        other = Environment()
        h1 = Host(env, "h1")
        h2 = Host(other, "h2")
        with pytest.raises(ValueError):
            _connect(h1, h2)

    def test_closed_connection_rejects_send(self, env, host):
        conn = _connect(host, host)
        conn.close()

        def flow():
            yield from conn.a.send(10)

        process = env.process(flow())
        with pytest.raises(Exception):
            env.run(until=process)

    def test_recv_stats_accumulate(self, env, host, runner):
        conn = _connect(host, host)

        def flow():
            for _ in range(3):
                yield from conn.a.send(100)
            for _ in range(3):
                yield from conn.b.recv()

        runner(flow())
        assert conn.b.recv_stats.messages == 3
        assert conn.b.recv_stats.payload_bytes == 300
        assert len(conn.b.recv_stats.latencies) == 3


def _stream_gbps(env, conn, h_cpu_hosts, duration=0.02, msg=1 << 20):
    got = {"bytes": 0}

    def sender():
        while env.now < duration:
            yield from conn.a.send(msg)

    def receiver():
        while True:
            message = yield from conn.b.recv()
            got["bytes"] += message.size_bytes

    env.process(sender())
    env.process(receiver())
    env.run(until=duration)
    return to_gbps(got["bytes"] / duration)


class TestModePerformanceShapes:
    """The paper's §2 ordering must emerge from the model."""

    def test_host_mode_beats_bridge_mode(self, env):
        h = Host(env, "h1")
        host_conn = _connect(h, h)
        host_rate = _stream_gbps(env, host_conn, [h])

        env2 = Environment()
        h2 = Host(env2, "h1")
        bridge = SoftwareBridge(h2)
        bridge_conn = _connect(
            h2, h2, mode=TcpMode.BRIDGE, a_bridge=bridge, b_bridge=bridge
        )
        bridge_rate = _stream_gbps(env2, bridge_conn, [h2])

        assert host_rate > bridge_rate > 0

    def test_bridge_mode_beats_overlay_mode(self, env):
        h = Host(env, "h1")
        bridge = SoftwareBridge(h)
        bridge_conn = _connect(
            h, h, mode=TcpMode.BRIDGE, a_bridge=bridge, b_bridge=bridge
        )
        bridge_rate = _stream_gbps(env, bridge_conn, [h])

        env2 = Environment()
        h2 = Host(env2, "h1")
        mesh = RoutingMesh(env2)
        router = OverlayRouter(h2, mesh.join("h1"))
        overlay_conn = _connect(
            h2, h2, mode=TcpMode.OVERLAY, a_router=router, b_router=router
        )
        overlay_rate = _stream_gbps(env2, overlay_conn, [h2])

        assert bridge_rate > overlay_rate > 0

    def test_paper_absolute_numbers(self, env):
        """Host ≈ 38, bridge ≈ 27 Gb/s at ~200 % CPU (paper §2.3-2.4)."""
        h = Host(env, "h1")
        rate = _stream_gbps(env, _connect(h, h), [h], duration=0.05)
        assert rate == pytest.approx(38, rel=0.05)
        assert h.cpu.utilisation_percent() == pytest.approx(200, rel=0.05)

        env2 = Environment()
        h2 = Host(env2, "h1")
        bridge = SoftwareBridge(h2)
        conn = _connect(h2, h2, mode=TcpMode.BRIDGE,
                        a_bridge=bridge, b_bridge=bridge)
        rate2 = _stream_gbps(env2, conn, [h2], duration=0.05)
        assert rate2 == pytest.approx(27, rel=0.05)

    def test_interhost_overlay_crosses_two_routers(self, env, fabric):
        h1 = Host(env, "h1", fabric=fabric)
        h2 = Host(env, "h2", fabric=fabric)
        mesh = RoutingMesh(env)
        r1 = OverlayRouter(h1, mesh.join("h1"))
        r2 = OverlayRouter(h2, mesh.join("h2"))
        r1.connect_peer(r2)
        mesh.announce("10.40.0.3", "h2", immediate=True)
        conn = TcpConnection(
            h1, h2,
            EndpointAddr("10.40.0.2", 1), EndpointAddr("10.40.0.3", 1),
            mode=TcpMode.OVERLAY, a_router=r1, b_router=r2,
        )
        received = []

        def flow():
            yield from conn.a.send(10_000)
            message = yield from conn.b.recv()
            received.append(message)

        done = env.process(flow())
        env.run(until=done)
        assert r1.messages_routed == 1  # encap at the sender side
        assert r2.messages_routed == 1  # decap at the receiver side

    def test_overlay_drops_unroutable_traffic(self, env, fabric):
        h1 = Host(env, "h1", fabric=fabric)
        mesh = RoutingMesh(env)
        r1 = OverlayRouter(h1, mesh.join("h1"))
        message = Message(size_bytes=10, dst=EndpointAddr("10.99.0.1", 5))
        message.sent_at = env.now
        r1.submit(message)
        env.run()
        assert "dropped" in message.meta

"""Unit tests for the IPAM."""

import pytest

from repro.errors import AddressError, AddressExhausted
from repro.netstack import IpPool, OverlaySubnets


class TestIpPool:
    def test_allocates_lowest_free_first(self):
        pool = IpPool("10.32.0.0/24")
        assert pool.allocate() == "10.32.0.2"  # .1 is the gateway
        assert pool.allocate() == "10.32.0.3"

    def test_gateway_reserved(self):
        pool = IpPool("10.32.0.0/24")
        assert pool.gateway == "10.32.0.1"
        with pytest.raises(AddressError):
            pool.allocate("10.32.0.1")

    def test_release_enables_reuse(self):
        pool = IpPool("10.32.0.0/24")
        first = pool.allocate()
        pool.release(first)
        assert pool.allocate() == first

    def test_release_unallocated_raises(self):
        pool = IpPool("10.32.0.0/24")
        with pytest.raises(AddressError):
            pool.release("10.32.0.5")

    def test_manual_assignment(self):
        pool = IpPool("10.32.0.0/24")
        assert pool.allocate("10.32.0.77") == "10.32.0.77"
        with pytest.raises(AddressError):
            pool.allocate("10.32.0.77")  # double allocation

    def test_manual_assignment_outside_subnet(self):
        pool = IpPool("10.32.0.0/24")
        with pytest.raises(AddressError):
            pool.allocate("192.168.0.1")

    def test_exhaustion(self):
        pool = IpPool("10.32.0.0/29")  # 8 addresses, 3 reserved
        for _ in range(pool.capacity):
            pool.allocate()
        with pytest.raises(AddressExhausted):
            pool.allocate()

    def test_contains(self):
        pool = IpPool("10.32.0.0/24")
        assert "10.32.0.200" in pool
        assert "10.33.0.1" not in pool
        assert "garbage" not in pool

    def test_bad_cidr_rejected(self):
        with pytest.raises(AddressError):
            IpPool("not-a-cidr")
        with pytest.raises(AddressError):
            IpPool("10.0.0.1/24")  # host bits set (strict)

    def test_tiny_subnet_rejected(self):
        with pytest.raises(AddressError):
            IpPool("10.0.0.0/31")

    def test_allocated_snapshot_is_frozen(self):
        pool = IpPool("10.32.0.0/24")
        ip = pool.allocate()
        assert ip in pool.allocated
        with pytest.raises(AttributeError):
            pool.allocated.add("x")


class TestOverlaySubnets:
    def test_per_tenant_pools_disjoint(self):
        subnets = OverlaySubnets("10.32.0.0/12", subnet_prefix=16)
        a = subnets.pool("tenant-a")
        b = subnets.pool("tenant-b")
        assert a is subnets.pool("tenant-a")
        assert a.cidr != b.cidr
        ip_a = a.allocate()
        assert ip_a in a and ip_a not in b

    def test_tenant_reverse_lookup(self):
        subnets = OverlaySubnets()
        pool = subnets.pool("team1")
        ip = pool.allocate()
        assert subnets.tenant_of(ip) == "team1"
        assert subnets.tenant_of("192.168.1.1") is None

    def test_prefix_must_be_longer_than_supernet(self):
        with pytest.raises(AddressError):
            OverlaySubnets("10.0.0.0/16", subnet_prefix=16)

    def test_supernet_exhaustion(self):
        subnets = OverlaySubnets("10.0.0.0/28", subnet_prefix=30)
        for tenant in "abcd":  # exactly four /30s fit in a /28
            subnets.pool(tenant)
        with pytest.raises(AddressExhausted):
            subnets.pool("e")

"""Unit tests for route tables and the routing mesh."""

import pytest

from repro.errors import RoutingError
from repro.netstack import RouteTable, RoutingMesh


class TestRouteTable:
    def test_host_route_lookup(self):
        table = RouteTable("h1")
        table.install("10.32.0.5", "h2")
        assert table.lookup("10.32.0.5") == "h2"

    def test_longest_prefix_wins(self):
        table = RouteTable("h1")
        table.install("10.32.0.0/16", "default-hop")
        table.install("10.32.1.0/24", "specific-hop")
        assert table.lookup("10.32.1.9") == "specific-hop"
        assert table.lookup("10.32.2.9") == "default-hop"

    def test_missing_route_raises(self):
        table = RouteTable("h1")
        with pytest.raises(RoutingError):
            table.lookup("10.0.0.1")

    def test_withdraw(self):
        table = RouteTable("h1")
        table.install("10.32.0.5", "h2")
        table.withdraw("10.32.0.5")
        assert not table.knows("10.32.0.5")

    def test_replace_route(self):
        table = RouteTable("h1")
        table.install("10.32.0.5", "h2")
        table.install("10.32.0.5", "h3")
        assert table.lookup("10.32.0.5") == "h3"
        assert len(table) == 1

    def test_bad_inputs(self):
        table = RouteTable("h1")
        with pytest.raises(RoutingError):
            table.install("garbage", "h2")
        with pytest.raises(RoutingError):
            table.lookup("garbage")


class TestRoutingMesh:
    def test_join_gives_empty_table(self, env):
        mesh = RoutingMesh(env)
        table = mesh.join("h1")
        assert len(table) == 0
        assert mesh.table("h1") is table

    def test_duplicate_join_rejected(self, env):
        mesh = RoutingMesh(env)
        mesh.join("h1")
        with pytest.raises(RoutingError):
            mesh.join("h1")

    def test_unknown_table_rejected(self, env):
        mesh = RoutingMesh(env)
        with pytest.raises(RoutingError):
            mesh.table("nope")

    def test_immediate_announce_reaches_everyone(self, env):
        mesh = RoutingMesh(env)
        t1, t2 = mesh.join("h1"), mesh.join("h2")
        mesh.announce("10.32.0.5", "h1", immediate=True)
        assert t1.lookup("10.32.0.5") == "h1"
        assert t2.lookup("10.32.0.5") == "h1"

    def test_convergence_delay_creates_staleness_window(self, env):
        mesh = RoutingMesh(env, convergence_delay_s=0.5)
        t1, t2 = mesh.join("h1"), mesh.join("h2")
        mesh.announce("10.32.0.5", "h1")
        # Owner's table updates instantly; the peer is stale.
        assert t1.knows("10.32.0.5")
        assert not t2.knows("10.32.0.5")
        env.run(until=0.6)
        assert t2.lookup("10.32.0.5") == "h1"

    def test_withdraw_propagates(self, env):
        mesh = RoutingMesh(env, convergence_delay_s=0.1)
        t1, t2 = mesh.join("h1"), mesh.join("h2")
        mesh.announce("10.32.0.5", "h1", immediate=True)
        mesh.withdraw("10.32.0.5")
        assert t2.knows("10.32.0.5")  # still converging
        env.run(until=0.2)
        assert not t1.knows("10.32.0.5")
        assert not t2.knows("10.32.0.5")

    def test_leave_stops_updates(self, env):
        mesh = RoutingMesh(env, convergence_delay_s=0.1)
        mesh.join("h1")
        mesh.join("h2")
        mesh.announce("10.32.0.5", "h1")
        mesh.leave("h2")
        env.run()  # in-flight flood must not crash on the absent router

    def test_zero_delay_mesh_is_immediate(self, env):
        mesh = RoutingMesh(env, convergence_delay_s=0.0)
        __, t2 = mesh.join("h1"), mesh.join("h2")
        mesh.announce("10.32.0.9", "h1")
        assert t2.knows("10.32.0.9")

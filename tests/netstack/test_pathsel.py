"""Unit + property tests for ECMP/flowlet path selection."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RoutingError
from repro.hardware import FatTreeFabric, FatTreeTopology, PhysicalNic
from repro.netstack import PathSelector, ecmp_hash
from repro.sim import Environment


def _names(path):
    return tuple(link.name for link in path)


@pytest.fixture
def topo(env):
    return FatTreeTopology(env, k=4)


@pytest.fixture
def selector(topo):
    return PathSelector(topo)


# ---------------------------------------------------------------- hashing


def test_ecmp_hash_is_sha256_derived():
    digest = hashlib.sha256(b"1:2:agg").digest()
    assert ecmp_hash(1, 2, "agg") == int.from_bytes(digest[:8], "big")
    assert ecmp_hash("a") != ecmp_hash("b")


def test_selector_validates_arguments(topo):
    with pytest.raises(ValueError):
        PathSelector(topo, flowlet_gap_s=0)
    with pytest.raises(ValueError):
        PathSelector(topo, max_flows=0)


# ---------------------------------------------------------------- ECMP


def test_route_is_deterministic_per_flow_key(env):
    """Two fresh topologies give byte-identical paths for the same key."""
    paths = []
    for _ in range(2):
        fresh_env = Environment()
        topo = FatTreeTopology(fresh_env, k=4)
        selector = PathSelector(topo)
        paths.append([
            _names(selector.route(0.0, topo.edges[0][0], topo.edges[1][1],
                                  (0, 4, flow)).path)
            for flow in range(32)
        ])
    assert paths[0] == paths[1]


def test_same_edge_routes_empty_path(selector, topo):
    edge = topo.edges[0][0]
    assert selector.route(0.0, edge, edge, (0, 1)).path == ()


def test_intra_pod_routes_two_hops(selector, topo):
    src, dst = topo.edges[0][0], topo.edges[0][1]
    path = selector.route(0.0, src, dst, (0, 2)).path
    assert len(path) == 2
    assert path[0].src is src and path[0].dst.kind == "agg"
    assert path[1].dst is dst


def test_inter_pod_routes_four_hops_up_over_down(selector, topo):
    src, dst = topo.edges[0][0], topo.edges[2][1]
    path = selector.route(0.0, src, dst, (0, 11)).path
    kinds = [(link.src.kind, link.dst.kind) for link in path]
    assert kinds == [("edge", "agg"), ("agg", "core"),
                     ("core", "agg"), ("agg", "edge")]
    assert path[1].src.pod == 0 and path[2].dst.pod == 2
    # The up and down aggs share an index (the core's group).
    assert path[1].src.index == path[2].dst.index


def test_ecmp_spreads_uniformly_chi_square(selector, topo):
    """Hash uniformity over the (k/2)^2 = 4 equal-cost paths.

    400 synthetic flows, expected 100 per path; chi-square with 3
    degrees of freedom must stay under the alpha=0.001 critical value
    (16.27).  Deterministic: the flow keys are fixed.
    """
    src, dst = topo.edges[0][0], topo.edges[1][0]
    counts: dict = {}
    flows = 400
    for flow in range(flows):
        path = selector.route(0.0, src, dst, ("u", flow)).path
        counts[_names(path)] = counts.get(_names(path), 0) + 1
    assert len(counts) == 4
    expected = flows / 4
    chi2 = sum((n - expected) ** 2 / expected for n in counts.values())
    assert chi2 < 16.27


def test_routing_error_when_no_path_survives(selector, topo):
    src, dst = topo.edges[0][0], topo.edges[1][0]
    for agg in topo.pod_aggs(0):
        topo.fail_cable(src.name, agg.name)
    with pytest.raises(RoutingError):
        selector.route(0.0, src, dst, (0, 4))


def test_dead_links_are_excluded_from_candidates(selector, topo):
    src, dst = topo.edges[0][0], topo.edges[1][0]
    topo.fail_cable(src.name, "agg0.0")
    for flow in range(16):
        path = selector.route(0.0, src, dst, ("avoid", flow)).path
        assert all(link.up for link in path)
        assert path[0].dst.name == "agg0.1"


# ---------------------------------------------------------------- flowlets


def test_flowlet_rehash_only_after_idle_gap(selector, topo):
    src, dst = topo.edges[0][0], topo.edges[3][0]
    key = (0, 12)
    gap = selector.flowlet_gap_s
    first = selector.route(0.0, src, dst, key)
    again = selector.route(gap * 0.5, src, dst, key)
    assert again.flowlet_key == first.flowlet_key
    assert again.path == first.path
    assert selector.rehashes == 0
    # Idle longer than the gap: new flowlet, sequence restarts.
    later = selector.route(gap * 0.5 + gap * 1.5, src, dst, key)
    assert selector.rehashes == 1
    assert later.flowlet_key != first.flowlet_key
    assert later.seq == 0


def test_flowlet_sequence_increments_within_flowlet(selector, topo):
    src, dst = topo.edges[0][0], topo.edges[3][0]
    seqs = [selector.route(i * 1e-6, src, dst, (0, 13)).seq
            for i in range(5)]
    assert seqs == [0, 1, 2, 3, 4]


def test_plain_ecmp_never_rehashes(topo):
    selector = PathSelector(topo, flowlet_gap_s=None)
    src, dst = topo.edges[0][0], topo.edges[1][0]
    first = selector.route(0.0, src, dst, (0, 4))
    later = selector.route(10.0, src, dst, (0, 4))
    assert selector.rehashes == 0
    assert later.path == first.path
    assert later.flowlet_key == first.flowlet_key


@given(st.lists(st.booleans(), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_flowlet_id_bumps_exactly_on_long_gaps(long_gaps):
    """Property: the flowlet id advances once per idle gap > threshold,
    never otherwise, regardless of the arrival pattern."""
    env = Environment()
    topo = FatTreeTopology(env, k=4)
    selector = PathSelector(topo)
    src, dst = topo.edges[0][0], topo.edges[1][0]
    gap = selector.flowlet_gap_s
    now = 0.0
    selector.route(now, src, dst, ("p", 1))
    for is_long in long_gaps:
        now += gap * 2 if is_long else gap * 0.5
        selector.route(now, src, dst, ("p", 1))
    assert selector.rehashes == sum(long_gaps)
    route = selector.route(now, src, dst, ("p", 1))
    assert route.flowlet_key[1] == sum(long_gaps)


def test_topology_change_ends_the_flowlet(selector, topo):
    src, dst = topo.edges[0][0], topo.edges[1][0]
    first = selector.route(0.0, src, dst, (0, 4))
    topo.fail_cable("agg3.0", "core0.0")  # unrelated cable, version bump
    second = selector.route(1e-6, src, dst, (0, 4))
    assert second.flowlet_key != first.flowlet_key
    assert second.flowlet_key[2] == topo.version


# ---------------------------------------------------------------- bounds


def test_flow_state_is_bounded_with_fifo_eviction(topo):
    selector = PathSelector(topo, max_flows=4)
    src, dst = topo.edges[0][0], topo.edges[1][0]
    for flow in range(6):
        selector.route(0.0, src, dst, ("e", flow))
    assert selector.flow_count() == 4
    assert selector.evictions == 2
    selector.reset()
    assert selector.flow_count() == 0


# ---------------------------------------------------------------- fabric-level


def test_path_assignments_are_byte_identical_across_runs():
    """Same schedule, two fresh environments: identical per-link loads."""

    def run_once():
        env = Environment()
        fabric = FatTreeFabric(env, k=4)
        nics = [PhysicalNic(env) for _ in range(8)]
        for nic in nics:
            fabric.attach(nic)

        def stream(src, dst, count):
            def go():
                for _ in range(count):
                    yield from fabric.send(src, dst, 4096, lambda: None)
            env.process(go())

        stream(nics[0], nics[4], 25)
        stream(nics[1], nics[5], 25)
        stream(nics[2], nics[6], 25)
        env.run()
        return {
            link.name: (link.assignments, link.pipe.bytes_moved)
            for link in fabric.topology.links()
        }

    assert run_once() == run_once()

"""Integration tests: whole-system scenarios across every layer."""

import pytest

import repro
from repro.cluster import ContainerSpec
from repro.core import (
    FreeFlowNetwork,
    MigrationController,
    PolicyConfig,
    SocketLayer,
)
from repro.hardware import NO_RDMA_TESTBED, to_gbps
from repro.metrics import run_pingpong, run_stream
from repro.transports import DpdkEngine, Mechanism
from repro.workloads import KeyValueStoreApp


@pytest.fixture(autouse=True)
def _fresh_dpdk_registry():
    DpdkEngine._BY_HOST.clear()
    yield
    DpdkEngine._BY_HOST.clear()


def test_quickstart_helper_builds_working_cluster():
    env, cluster, network = repro.quickstart_cluster(hosts=3)
    assert len(cluster.hosts) == 3
    c1 = cluster.submit(ContainerSpec("a"))
    c2 = cluster.submit(ContainerSpec("b"))
    network.attach(c1)
    network.attach(c2)

    def go():
        conn = yield from network.connect_containers("a", "b")
        yield from conn.a.send(1024, payload="hello")
        message = yield from conn.b.recv()
        return message.payload

    process = env.process(go())
    assert env.run(until=process) == "hello"


def test_quickstart_validates_hosts():
    with pytest.raises(ValueError):
        repro.quickstart_cluster(hosts=0)


def test_web_service_three_tiers(env, cluster, network):
    """The paper's §2.1 shape: load balancer + web + cache tiers."""
    tiers = {}
    for name, host in (("lb", "h1"), ("web", "h1"), ("db", "h2")):
        c = cluster.submit(ContainerSpec(name, pinned_host=host))
        network.attach(c)
        tiers[name] = c

    def go():
        front = yield from network.connect_containers("lb", "web")
        back = yield from network.connect_containers("web", "db")
        assert front.mechanism is Mechanism.SHM
        assert back.mechanism is Mechanism.RDMA

        # One request flows through both tiers.
        yield from front.a.send(512, payload="GET /")
        request = yield from front.b.recv()
        yield from back.a.send(256, payload=("query", request.payload))
        query = yield from back.b.recv()
        yield from back.b.send(4096, payload=("rows", query.payload))
        rows = yield from back.a.recv()
        yield from front.b.send(8192, payload=("page", rows.payload))
        page = yield from front.a.recv()
        return page.payload

    process = env.process(go())
    page = env.run(until=process)
    assert page == ("page", ("rows", ("query", "GET /")))


def test_untrusted_tenants_fall_back_to_tcp(env, cluster, network):
    blue = cluster.submit(ContainerSpec("blue", tenant="blue",
                                        pinned_host="h1"))
    red = cluster.submit(ContainerSpec("red", tenant="red",
                                       pinned_host="h1"))
    network.attach(blue)
    network.attach(red)

    def go():
        conn = yield from network.connect_containers("blue", "red")
        return conn.mechanism

    process = env.process(go())
    assert env.run(until=process) is Mechanism.TCP


def test_no_rdma_cluster_uses_dpdk_then_tcp():
    env, cluster, network = repro.quickstart_cluster(
        hosts=2, spec=NO_RDMA_TESTBED
    )
    a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
    b = cluster.submit(ContainerSpec("b", pinned_host="host1"))
    network.attach(a)
    network.attach(b)

    def go():
        conn = yield from network.connect_containers("a", "b")
        return conn.mechanism

    process = env.process(go())
    # NO_RDMA_TESTBED disables both bypasses: TCP is the only option.
    assert env.run(until=process) is Mechanism.TCP


def test_dpdk_chosen_when_rdma_off_but_dpdk_on(env, cluster):
    network = FreeFlowNetwork(
        cluster, policy_config=PolicyConfig(allow_rdma=False)
    )
    a = cluster.submit(ContainerSpec("a", pinned_host="h1"))
    b = cluster.submit(ContainerSpec("b", pinned_host="h2"))
    network.attach(a)
    network.attach(b)

    def go():
        conn = yield from network.connect_containers("a", "b")
        return conn.mechanism

    process = env.process(go())
    assert env.run(until=process) is Mechanism.DPDK


class TestFreeFlowHeadlineClaims:
    """The paper's bottom line, measured end-to-end on the public API."""

    def test_intra_host_freeflow_matches_shm_ipc(self, env, cluster,
                                                 network):
        a = cluster.submit(ContainerSpec("a", pinned_host="h1"))
        b = cluster.submit(ContainerSpec("b", pinned_host="h1"))
        network.attach(a)
        network.attach(b)

        def go():
            conn = yield from network.connect_containers("a", "b")
            return conn

        process = env.process(go())
        conn = env.run(until=process)
        result = run_stream(env, [(conn.a, conn.b)], duration_s=0.02,
                            hosts=[a.host])
        # Paper Fig. 1: shm IPC ≈ 77 Gb/s on this testbed; FreeFlow's
        # intra-host path IS a shm channel, so it must match.
        assert result.gbps == pytest.approx(76.8, rel=0.1)

    def test_inter_host_freeflow_matches_rdma_at_low_cpu(
        self, env, cluster, network, host_pair
    ):
        a = cluster.submit(ContainerSpec("a", pinned_host="h1"))
        b = cluster.submit(ContainerSpec("b", pinned_host="h2"))
        network.attach(a)
        network.attach(b)

        def go():
            conn = yield from network.connect_containers("a", "b")
            return conn

        process = env.process(go())
        conn = env.run(until=process)
        result = run_stream(env, [(conn.a, conn.b)], duration_s=0.02,
                            hosts=list(host_pair))
        assert result.gbps == pytest.approx(39, rel=0.08)
        assert result.total_cpu_percent < 120  # vs ~200 % for kernel TCP

    def test_latency_ordering_freeflow_vs_overlay(self, env, cluster,
                                                  network):
        from repro.baselines import OverlayModeNetwork

        a = cluster.submit(ContainerSpec("a", pinned_host="h1"))
        b = cluster.submit(ContainerSpec("b", pinned_host="h1"))
        network.attach(a)
        network.attach(b)

        def go():
            conn = yield from network.connect_containers("a", "b")
            return conn

        process = env.process(go())
        conn = env.run(until=process)
        freeflow = run_pingpong(env, conn.a, conn.b, rounds=50)

        overlay_net = OverlayModeNetwork(env)
        overlay_conn = overlay_net.connect(a, b)
        overlay = run_pingpong(env, overlay_conn.a, overlay_conn.b,
                               rounds=50)
        assert freeflow.mean_us() < overlay.mean_us() / 5


def test_kv_app_survives_live_migration(env, cluster, network):
    server = cluster.submit(ContainerSpec("kv", pinned_host="h1"))
    client_c = cluster.submit(ContainerSpec("cl", pinned_host="h1"))
    network.attach(server)
    network.attach(client_c)
    app = KeyValueStoreApp(network, server, value_bytes=1024)
    controller = MigrationController(network)

    def go():
        client = yield from app.client(client_c)
        yield from client.put(1, "before-migration")
        yield from controller.live_migrate("kv", "h2", state_bytes=20e6)
        value = yield from client.get(1)
        return value

    process = env.process(go())
    assert env.run(until=process) == "before-migration"


def test_ip_is_location_independent_across_migration(env, cluster, network):
    c = cluster.submit(ContainerSpec("mover", pinned_host="h1"))
    peer = cluster.submit(ContainerSpec("peer", pinned_host="h2"))
    network.attach(c)
    network.attach(peer)
    ip_before = c.ip
    controller = MigrationController(network)

    def go():
        yield from controller.live_migrate("mover", "h2", state_bytes=1e6)

    process = env.process(go())
    env.run(until=process)
    assert c.ip == ip_before  # paper §2.4: IP independent of location
    assert network.orchestrator.lookup_by_ip(ip_before).container is c


def test_multipair_shm_saturates_cores_then_bus(env, cluster, network):
    """Paper §2.4 Figure 2(a): shm scales with pairs until a shared
    resource saturates."""
    from repro.transports import ShmChannel

    host = cluster.host("h1")
    one = run_stream(
        env, [(lambda ch: (ch.a, ch.b))(ShmChannel(host))],
        duration_s=0.01, hosts=[host],
    )
    pairs = [ShmChannel(host) for _ in range(4)]
    four = run_stream(
        env, [(ch.a, ch.b) for ch in pairs], duration_s=0.01, hosts=[host],
    )
    assert four.gbps > one.gbps * 2
    # All four cores busy copying.
    assert four.cpu_percent["h1"] == pytest.approx(400, rel=0.1)


def test_cli_demos_run(capsys):
    """`python -m repro` demos execute and print sane output."""
    from repro.__main__ import main

    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "SHM" in out and "RDMA" in out

    assert main(["matrix"]) == 0
    out = capsys.readouterr().out
    assert "shm" in out and "rdma" in out and "tcp" in out

"""Unit + behaviour tests for the DPDK transport."""

import pytest

from repro.errors import TransportUnavailable
from repro.hardware import Host, NO_RDMA_TESTBED, to_gbps
from repro.sim import Environment
from repro.transports import DpdkChannel, DpdkEngine, Mechanism


@pytest.fixture(autouse=True)
def _fresh_engine_registry():
    DpdkEngine._BY_HOST.clear()
    yield
    DpdkEngine._BY_HOST.clear()


def test_requires_dpdk_nic(env, fabric):
    plain = Host(env, "h1", spec=NO_RDMA_TESTBED, fabric=fabric)
    with pytest.raises(TransportUnavailable):
        DpdkEngine(plain)


def test_one_engine_per_host(env, host):
    first = DpdkEngine.on_host(host)
    second = DpdkEngine.on_host(host)
    assert first is second


def test_engine_dedicates_a_core(env, host):
    DpdkEngine.on_host(host)
    assert host.cpu.busy_cores == 1


def test_shutdown_releases_core(env, host):
    engine = DpdkEngine.on_host(host)
    engine.shutdown()
    assert host.cpu.busy_cores == 0
    # A new engine can start afterwards.
    assert DpdkEngine.on_host(host) is not engine


def test_roundtrip(env, host_pair, runner):
    h1, h2 = host_pair
    channel = DpdkChannel(h1, h2)
    assert channel.mechanism is Mechanism.DPDK

    def flow():
        yield from channel.a.send(9000, payload="pkt")
        message = yield from channel.b.recv()
        return message

    assert runner(flow()).payload == "pkt"


def test_interhost_throughput_near_link_rate(env, host_pair):
    h1, h2 = host_pair
    channel = DpdkChannel(h1, h2)
    got = {"bytes": 0}
    duration = 0.02

    def sender():
        while env.now < duration:
            yield from channel.a.send(1 << 20)

    def receiver():
        while True:
            message = yield from channel.b.recv()
            got["bytes"] += message.size_bytes

    env.process(sender())
    env.process(receiver())
    env.run(until=duration)
    rate = to_gbps(got["bytes"] / duration)
    assert rate == pytest.approx(38.8, rel=0.12)


def test_pmd_core_always_burns(env, host_pair):
    """DPDK's cost: one fully-busy core per host even when idle-ish."""
    h1, h2 = host_pair
    DpdkChannel(h1, h2)
    env.run(until=0.01)
    assert h1.cpu.utilisation_percent() == pytest.approx(100, rel=0.05)
    assert h2.cpu.utilisation_percent() == pytest.approx(100, rel=0.05)


def test_in_order_delivery(env, host_pair):
    h1, h2 = host_pair
    channel = DpdkChannel(h1, h2)
    received = []

    def sender():
        for i in range(15):
            yield from channel.a.send(50_000, payload=i)

    def receiver():
        for _ in range(15):
            message = yield from channel.b.recv()
            received.append(message.payload)

    env.process(sender())
    done = env.process(receiver())
    env.run(until=done)
    assert received == list(range(15))


def test_closed_lane_rejects_send(env, host_pair):
    h1, h2 = host_pair
    channel = DpdkChannel(h1, h2)
    channel.close()

    def flow():
        yield from channel.a.send(10)

    process = env.process(flow())
    with pytest.raises(TransportUnavailable):
        env.run(until=process)

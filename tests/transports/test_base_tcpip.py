"""Unit tests for the lane framework and the TCP fallback adapter."""

import pytest

from repro.errors import ChannelRebound
from repro.hardware import Host, to_gbps
from repro.sim import Environment
from repro.transports import (
    DuplexChannel,
    Mechanism,
    ShmLane,
    TcpFallbackChannel,
)


class TestLaneFramework:
    def test_duplex_requires_matching_mechanisms(self, env, host, host_pair):
        from repro.transports import RdmaLane

        h1, h2 = host_pair
        with pytest.raises(ValueError):
            DuplexChannel(ShmLane(h1), RdmaLane(h1, h2))

    def test_stats_track_messages(self, env, host, runner):
        lane = ShmLane(host)

        def flow():
            yield from lane.send(100)
            yield from lane.send(200)
            yield from lane.recv()
            yield from lane.recv()

        runner(flow())
        assert lane.stats.messages_sent == 2
        assert lane.stats.messages_delivered == 2
        assert lane.stats.payload_bytes == 300
        assert len(lane.stats.latencies) == 2

    def test_on_deliver_hook_fires(self, env, host, runner):
        lane = ShmLane(host)
        seen = []
        lane.on_deliver = lambda m: seen.append(m.size_bytes)

        def flow():
            yield from lane.send(123)
            yield from lane.recv()

        runner(flow())
        assert seen == [123]

    def test_eject_receivers_fails_pending_gets(self, env, host):
        lane = ShmLane(host)
        outcome = []

        def receiver():
            try:
                yield from lane.recv()
            except ChannelRebound:
                outcome.append("ejected")

        env.process(receiver())
        env.run(until=0.001)
        lane.eject_receivers(ChannelRebound("swap"))
        env.run()
        assert outcome == ["ejected"]

    def test_mechanism_kernel_bypass_flags(self):
        assert Mechanism.SHM.kernel_bypass
        assert Mechanism.RDMA.kernel_bypass
        assert Mechanism.DPDK.kernel_bypass
        assert not Mechanism.TCP.kernel_bypass


class TestTcpFallback:
    def test_mechanism_is_tcp(self, env, host_pair):
        h1, h2 = host_pair
        channel = TcpFallbackChannel(h1, h2)
        assert channel.mechanism is Mechanism.TCP

    def test_roundtrip_both_directions(self, env, host_pair, runner):
        h1, h2 = host_pair
        channel = TcpFallbackChannel(h1, h2)

        def flow():
            yield from channel.a.send(1000, payload="fwd")
            fwd = yield from channel.b.recv()
            yield from channel.b.send(1000, payload="rev")
            rev = yield from channel.a.recv()
            return fwd.payload, rev.payload

        assert runner(flow()) == ("fwd", "rev")

    def test_throughput_matches_host_mode(self, env, host_pair):
        h1, h2 = host_pair
        channel = TcpFallbackChannel(h1, h2)
        got = {"bytes": 0}
        duration = 0.02

        def sender():
            while env.now < duration:
                yield from channel.a.send(1 << 20)

        def receiver():
            while True:
                message = yield from channel.b.recv()
                got["bytes"] += message.size_bytes

        env.process(sender())
        env.process(receiver())
        env.run(until=duration)
        assert to_gbps(got["bytes"] / duration) == pytest.approx(38, rel=0.08)

    def test_lane_stats_accumulate(self, env, host_pair, runner):
        h1, h2 = host_pair
        channel = TcpFallbackChannel(h1, h2)

        def flow():
            yield from channel.a.send(500)
            yield from channel.b.recv()

        runner(flow())
        assert channel.a.send_stats.messages_sent == 1
        # a's outgoing lane is b's incoming lane: same stats object.
        assert channel.a.send_stats is channel.b.recv_stats
        assert channel.b.recv_stats.messages_delivered == 1

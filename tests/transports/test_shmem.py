"""Unit + behaviour tests for the shared-memory channel."""

import pytest

from repro.errors import TransportError
from repro.hardware import Host, ShmSpec, to_gbps
from repro.sim import Environment
from repro.transports import Mechanism, ShmChannel, ShmLane


def test_mechanism_and_roundtrip(env, host, runner):
    channel = ShmChannel(host)
    assert channel.mechanism is Mechanism.SHM

    def flow():
        yield from channel.a.send(4096, payload={"k": 1})
        message = yield from channel.b.recv()
        return message

    message = runner(flow())
    assert message.payload == {"k": 1}
    assert message.latency > 0


def test_in_order_delivery(env, host):
    channel = ShmChannel(host)
    received = []

    def sender():
        for i in range(30):
            yield from channel.a.send(10_000, payload=i)

    def receiver():
        for _ in range(30):
            message = yield from channel.b.recv()
            received.append(message.payload)

    env.process(sender())
    done = env.process(receiver())
    env.run(until=done)
    assert received == list(range(30))


def test_oversized_message_rejected(env, host):
    lane = ShmLane(host, ShmSpec(ring_bytes=1024))

    def flow():
        yield from lane.send(4096)

    process = env.process(flow())
    with pytest.raises(TransportError):
        env.run(until=process)


def test_ring_backpressure_blocks_sender(env, host):
    lane = ShmLane(host, ShmSpec(ring_bytes=1000))
    progress = []

    def sender():
        yield from lane.send(600)
        progress.append("first")
        yield from lane.send(600)  # must wait for the consumer
        progress.append("second")

    def consumer():
        yield env.timeout(0.01)
        yield from lane.recv()

    env.process(sender())
    env.process(consumer())
    env.run(until=0.005)
    assert progress == ["first"]
    env.run()
    assert progress == ["first", "second"]


def test_closed_lane_rejects_send(env, host):
    lane = ShmLane(host)
    lane.close()

    def flow():
        yield from lane.send(10)

    process = env.process(flow())
    with pytest.raises(TransportError):
        env.run(until=process)


def test_ring_memory_accounted_on_host(env, host):
    before = host.memory.allocated_bytes
    lane = ShmLane(host)
    assert host.memory.allocated_bytes == before + lane.spec.ring_bytes
    lane.close()
    assert host.memory.allocated_bytes == before


def test_throughput_near_memcpy_rate(env, host):
    """Single pair ≈ single-core memcpy rate (paper: near memory bw)."""
    channel = ShmChannel(host)
    got = {"bytes": 0}
    duration = 0.02

    def sender():
        while env.now < duration:
            yield from channel.a.send(1 << 20)

    def receiver():
        while True:
            message = yield from channel.b.recv()
            got["bytes"] += message.size_bytes

    env.process(sender())
    env.process(receiver())
    env.run(until=duration)
    rate = to_gbps(got["bytes"] / duration)
    # Core copy rate: 2.4 GHz / 0.25 c/B = 9.6 GB/s = 76.8 Gb/s.
    assert rate == pytest.approx(76.8, rel=0.1)
    # "still burns some cpu": about one core.
    assert host.cpu.utilisation_percent() == pytest.approx(100, rel=0.15)


def test_copying_receiver_doubles_cpu(env, host):
    """zero_copy_receive=False adds a receive-side memcpy."""
    spec = ShmSpec(zero_copy_receive=False)
    channel = ShmChannel(host, spec)
    duration = 0.01

    def sender():
        while env.now < duration:
            yield from channel.a.send(1 << 20)

    def receiver():
        while True:
            yield from channel.b.recv()

    env.process(sender())
    env.process(receiver())
    env.run(until=duration)
    assert host.cpu.utilisation_percent() > 150


def test_latency_is_microsecond_scale(env, host, runner):
    channel = ShmChannel(host)

    def flow():
        started = env.now
        yield from channel.a.send(4096)
        yield from channel.b.recv()
        return env.now - started

    latency = runner(flow())
    assert latency < 5e-6

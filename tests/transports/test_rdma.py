"""Unit + behaviour tests for the RDMA transport."""

import pytest

from repro.errors import TransportUnavailable
from repro.hardware import Host, NO_RDMA_TESTBED, to_gbps
from repro.sim import Environment
from repro.transports import Mechanism, RdmaChannel, RdmaLane


def _stream(env, channel, duration=0.02, msg=1 << 20):
    got = {"bytes": 0}

    def sender():
        while env.now < duration:
            yield from channel.a.send(msg)

    def receiver():
        while True:
            message = yield from channel.b.recv()
            got["bytes"] += message.size_bytes

    env.process(sender())
    env.process(receiver())
    env.run(until=duration)
    return to_gbps(got["bytes"] / duration)


def test_requires_rdma_nics(env, fabric):
    plain = Host(env, "h1", spec=NO_RDMA_TESTBED, fabric=fabric)
    capable = Host(env, "h2", fabric=fabric)
    with pytest.raises(TransportUnavailable):
        RdmaLane(plain, capable)
    with pytest.raises(TransportUnavailable):
        RdmaLane(capable, plain)


def test_roundtrip_and_mechanism(env, host_pair, runner):
    h1, h2 = host_pair
    channel = RdmaChannel(h1, h2)
    assert channel.mechanism is Mechanism.RDMA

    def flow():
        yield from channel.a.send(8192, payload="data")
        message = yield from channel.b.recv()
        return message

    message = runner(flow())
    assert message.payload == "data"


def test_in_order_delivery(env, host_pair):
    h1, h2 = host_pair
    channel = RdmaChannel(h1, h2)
    received = []

    def sender():
        for i in range(25):
            yield from channel.a.send(100_000, payload=i)

    def receiver():
        for _ in range(25):
            message = yield from channel.b.recv()
            received.append(message.payload)

    env.process(sender())
    done = env.process(receiver())
    env.run(until=done)
    assert received == list(range(25))


def test_interhost_throughput_is_link_bound(env, host_pair):
    h1, h2 = host_pair
    rate = _stream(env, RdmaChannel(h1, h2))
    # 40 Gb/s link at 97 % goodput ≈ 38.8; paper reports "40 Gb/s".
    assert rate == pytest.approx(38.8, rel=0.07)


def test_intrahost_loopback_also_link_bound(env, host):
    """Paper §2.3.1: intra-host RDMA is still capped at 40 Gb/s —
    the reason FreeFlow prefers shared memory for co-located pairs."""
    rate = _stream(env, RdmaChannel(host, host))
    assert rate == pytest.approx(38.8, rel=0.1)


def test_cpu_usage_is_near_zero(env, host_pair):
    h1, h2 = host_pair
    _stream(env, RdmaChannel(h1, h2))
    total = h1.cpu.utilisation_percent() + h2.cpu.utilisation_percent()
    assert total < 10  # paper: "a low cpu usage"


def test_nic_engine_busy_during_stream(env, host_pair):
    h1, h2 = host_pair
    _stream(env, RdmaChannel(h1, h2), msg=4096)
    assert h1.nic.engine_utilisation() > 0


def test_window_backpressure(env, host_pair):
    h1, h2 = host_pair
    lane = RdmaLane(h1, h2, window_bytes=1 << 20)
    admitted = []

    def sender():
        for i in range(4):
            yield from lane.send(1 << 20)
            admitted.append(i)

    env.process(sender())
    env.run(until=1e-5)
    # With a 1 MB window only one message can sit unacknowledged.
    assert len(admitted) <= 2


def test_closed_lane_rejects_send(env, host_pair):
    h1, h2 = host_pair
    lane = RdmaLane(h1, h2)
    lane.close()

    def flow():
        yield from lane.send(10)

    process = env.process(flow())
    with pytest.raises(TransportUnavailable):
        env.run(until=process)


def test_unattached_host_fails_loudly(env):
    h1 = Host(env, "h1")  # no fabric
    h2 = Host(env, "h2")
    lane = RdmaLane(h1, h2)

    def flow():
        yield from lane.send(10)

    env.process(flow())
    with pytest.raises(TransportUnavailable):
        env.run()


def test_small_message_latency_microseconds(env, host_pair, runner):
    h1, h2 = host_pair
    channel = RdmaChannel(h1, h2)

    def flow():
        started = env.now
        yield from channel.a.send(4096)
        yield from channel.b.recv()
        return env.now - started

    latency = runner(flow())
    assert latency < 10e-6

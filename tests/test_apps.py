"""Tests for the containerized application models (KV store, training)."""

import pytest

from repro.cluster import ContainerSpec
from repro.workloads import KeyValueStoreApp, ParameterServerApp


@pytest.fixture
def kv_setup(cluster, network):
    server = cluster.submit(ContainerSpec("kv-server", pinned_host="h1"))
    local = cluster.submit(ContainerSpec("local-client", pinned_host="h1"))
    remote = cluster.submit(ContainerSpec("remote-client", pinned_host="h2"))
    for c in (server, local, remote):
        network.attach(c)
    app = KeyValueStoreApp(network, server, value_bytes=2048)
    return app, server, local, remote


class TestKeyValueStore:
    def test_put_then_get_roundtrip(self, env, kv_setup, runner):
        app, __, local, __ = kv_setup

        def flow():
            client = yield from app.client(local)
            yield from client.put(1, "value-one")
            value = yield from client.get(1)
            yield from client.close()
            return value

        assert runner(flow()) == "value-one"
        assert app.puts_served == 1
        assert app.gets_served == 1

    def test_get_missing_key_returns_empty(self, env, kv_setup, runner):
        app, __, local, __ = kv_setup

        def flow():
            client = yield from app.client(local)
            value = yield from client.get(999)
            return value

        assert runner(flow()) == ""

    def test_two_clients_share_the_store(self, env, kv_setup, runner):
        app, __, local, remote = kv_setup

        def flow():
            writer = yield from app.client(local)
            yield from writer.put(7, "shared")
            reader = yield from app.client(remote)
            value = yield from reader.get(7)
            return value

        assert runner(flow()) == "shared"

    def test_remote_client_latency_higher_than_local(self, env, kv_setup,
                                                     runner):
        app, __, local, remote = kv_setup

        def flow():
            local_client = yield from app.client(local)
            remote_client = yield from app.client(remote)
            yield from local_client.put(1, "x")
            for _ in range(20):
                yield from local_client.get(1)
            local_mean = app.get_latencies.mean()
            count = len(app.get_latencies)
            for _ in range(20):
                yield from remote_client.get(1)
            remote_samples = app.get_latencies.samples[count:]
            remote_mean = sum(remote_samples) / len(remote_samples)
            return local_mean, remote_mean

        local_mean, remote_mean = runner(flow())
        assert remote_mean > local_mean

    def test_random_get_stays_in_keyspace(self, env, kv_setup, runner):
        app, __, local, __ = kv_setup

        def flow():
            client = yield from app.client(local)
            for _ in range(10):
                yield from client.random_get()

        runner(flow())
        assert app.gets_served == 10


class TestParameterServer:
    def _workers(self, cluster, network, n, split=True):
        workers = []
        for i in range(n):
            host = "h2" if (split and i >= n // 2) else "h1"
            c = cluster.submit(ContainerSpec(f"worker{i}", pinned_host=host))
            network.attach(c)
            workers.append(c)
        return workers

    def test_training_converges_to_mean(self, env, cluster, network, runner):
        workers = self._workers(cluster, network, 4)
        app = ParameterServerApp(network, workers,
                                 gradient_bytes=1 << 20, compute_s=1e-4)

        def flow():
            yield from app.run(steps=3)

        runner(flow())
        assert app.stats.steps == 3
        values = list(app.stats.final_values.values())
        assert len(values) == 4
        # Allreduce keeps every worker identical.
        assert all(v == pytest.approx(values[0]) for v in values)

    def test_needs_two_workers(self, cluster, network):
        worker = cluster.submit(ContainerSpec("solo"))
        network.attach(worker)
        with pytest.raises(ValueError):
            ParameterServerApp(network, [worker])

    def test_steps_validated(self, env, cluster, network):
        workers = self._workers(cluster, network, 2, split=False)
        app = ParameterServerApp(network, workers)
        process = env.process(app.run(steps=0))
        with pytest.raises(ValueError):
            env.run(until=process)

    def test_step_time_scales_with_gradient_size(self, env, cluster,
                                                 network, runner):
        workers = self._workers(cluster, network, 2, split=False)
        small = ParameterServerApp(network, workers,
                                   gradient_bytes=1 << 16, compute_s=0)

        def flow_small():
            yield from small.run(steps=2)

        runner(flow_small())
        small_time = small.stats.step_times.mean()

        big = ParameterServerApp(network, workers,
                                 gradient_bytes=1 << 24, compute_s=0)

        def flow_big():
            yield from big.run(steps=2)

        runner(flow_big())
        assert big.stats.step_times.mean() > small_time

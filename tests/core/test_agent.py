"""Unit + behaviour tests for the FreeFlow network agents."""

import pytest

from repro.core import FreeFlowAgent, build_channel
from repro.errors import TransportError, TransportUnavailable
from repro.hardware import Host, to_gbps
from repro.sim import Environment
from repro.transports import Mechanism


@pytest.fixture
def agents(host_pair):
    h1, h2 = host_pair
    return FreeFlowAgent(h1), FreeFlowAgent(h2)


def _stream(env, channel, duration=0.02, msg=1 << 20):
    got = {"bytes": 0}

    def sender():
        while env.now < duration:
            yield from channel.a.send(msg)

    def receiver():
        while True:
            message = yield from channel.b.recv()
            got["bytes"] += message.size_bytes

    env.process(sender())
    env.process(receiver())
    env.run(until=duration)
    return to_gbps(got["bytes"] / duration)


class TestChannelAssembly:
    def test_shm_requires_colocation(self, agents):
        a1, a2 = agents
        with pytest.raises(TransportUnavailable):
            build_channel(a1, a2, Mechanism.SHM)

    def test_local_channel_is_shm(self, env, host):
        agent = FreeFlowAgent(host)
        channel = build_channel(agent, agent, Mechanism.SHM)
        assert channel.mechanism is Mechanism.SHM

    def test_relay_lane_rejects_same_host(self, env, host):
        agent = FreeFlowAgent(host)
        with pytest.raises(ValueError):
            agent.relay_lane(agent, Mechanism.RDMA)

    def test_relay_channels_by_mechanism(self, env, agents):
        a1, a2 = agents
        for mechanism in (Mechanism.RDMA, Mechanism.DPDK, Mechanism.TCP):
            channel = build_channel(a1, a2, mechanism)
            assert channel.mechanism is mechanism

    def test_relay_refuses_shm_mechanism(self, env, agents):
        a1, a2 = agents
        with pytest.raises(TransportUnavailable):
            a1.relay_lane(a2, Mechanism.SHM)


class TestRelayDataPath:
    def test_roundtrip_preserves_payload_and_order(self, env, agents):
        a1, a2 = agents
        channel = build_channel(a1, a2, Mechanism.RDMA)
        received = []

        def sender():
            for i in range(20):
                yield from channel.a.send(65536, payload=i)

        def receiver():
            for _ in range(20):
                message = yield from channel.b.recv()
                received.append(message.payload)

        env.process(sender())
        done = env.process(receiver())
        env.run(until=done)
        assert received == list(range(20))

    def test_agent_stats_accumulate(self, env, agents, runner):
        a1, a2 = agents
        channel = build_channel(a1, a2, Mechanism.RDMA)

        def flow():
            yield from channel.a.send(1000)
            yield from channel.b.recv()

        runner(flow())
        assert a1.stats.messages_relayed == 1
        assert a1.stats.bytes_relayed == 1000
        assert a2.stats.messages_relayed == 1

    def test_zero_copy_agents_do_not_memcpy(self, env, agents, runner):
        a1, a2 = agents
        channel = build_channel(a1, a2, Mechanism.RDMA)

        def flow():
            yield from channel.a.send(1 << 20)
            yield from channel.b.recv()

        runner(flow())
        assert a1.stats.relay_copies == 0
        assert a2.stats.relay_copies == 0

    def test_copying_agents_memcpy_each_side(self, env, host_pair, runner):
        h1, h2 = host_pair
        a1 = FreeFlowAgent(h1, zero_copy=False)
        a2 = FreeFlowAgent(h2, zero_copy=False)
        channel = build_channel(a1, a2, Mechanism.RDMA)

        def flow():
            yield from channel.a.send(1 << 20)
            yield from channel.b.recv()

        runner(flow())
        assert a1.stats.relay_copies == 1
        assert a2.stats.relay_copies == 1

    def test_oversized_message_rejected(self, env, agents):
        a1, a2 = agents
        channel = build_channel(a1, a2, Mechanism.RDMA)

        def flow():
            yield from channel.a.send(1 << 30)

        process = env.process(flow())
        with pytest.raises(TransportError):
            env.run(until=process)

    def test_closed_relay_rejects_send(self, env, agents):
        a1, a2 = agents
        channel = build_channel(a1, a2, Mechanism.RDMA)
        channel.close()

        def flow():
            yield from channel.a.send(10)

        process = env.process(flow())
        with pytest.raises(TransportError):
            env.run(until=process)

    def test_rings_freed_on_close(self, env, agents):
        a1, a2 = agents
        before_1 = a1.host.memory.allocated_bytes
        before_2 = a2.host.memory.allocated_bytes
        channel = build_channel(a1, a2, Mechanism.RDMA)
        assert a1.host.memory.allocated_bytes > before_1
        channel.close()
        assert a1.host.memory.allocated_bytes == before_1
        assert a2.host.memory.allocated_bytes == before_2


class TestRelayPerformanceShapes:
    def test_rdma_relay_is_wire_bound(self, env, agents):
        a1, a2 = agents
        rate = _stream(env, build_channel(a1, a2, Mechanism.RDMA))
        assert rate == pytest.approx(38.8, rel=0.1)

    def test_rdma_relay_burns_far_less_cpu_than_tcp(self, env, host_pair):
        h1, h2 = host_pair
        a1, a2 = FreeFlowAgent(h1), FreeFlowAgent(h2)
        _stream(env, build_channel(a1, a2, Mechanism.RDMA))
        freeflow_cpu = (
            h1.cpu.utilisation_percent() + h2.cpu.utilisation_percent()
        )

        env2 = Environment()
        from repro.hardware import Fabric

        fabric2 = Fabric(env2)
        g1 = Host(env2, "g1", fabric=fabric2)
        g2 = Host(env2, "g2", fabric=fabric2)
        from repro.transports import TcpFallbackChannel

        _stream(env2, TcpFallbackChannel(g1, g2))
        tcp_cpu = g1.cpu.utilisation_percent() + g2.cpu.utilisation_percent()

        # Paper's core claim: similar throughput, a fraction of the CPU.
        assert freeflow_cpu < tcp_cpu / 2

    def test_tcp_relay_close_to_host_mode(self, env, agents):
        a1, a2 = agents
        rate = _stream(env, build_channel(a1, a2, Mechanism.TCP))
        assert rate == pytest.approx(38, rel=0.15)

"""Behaviour tests for the socket-over-verbs translation layer."""

import pytest

from repro.cluster import ContainerSpec
from repro.core import SocketLayer
from repro.errors import ConnectionRefused, SocketError
from repro.transports import Mechanism


@pytest.fixture(params=["streaming", "legacy"])
def layer(request, network):
    """Both data paths must satisfy the same byte-stream contract."""
    return SocketLayer(network, streaming=request.param == "streaming")


@pytest.fixture
def containers(cluster, network):
    a = cluster.submit(ContainerSpec("client", pinned_host="h1"))
    b = cluster.submit(ContainerSpec("server", pinned_host="h1"))
    c = cluster.submit(ContainerSpec("remote", pinned_host="h2"))
    for x in (a, b, c):
        network.attach(x)
    return a, b, c


def _echo_server(env, listener, count=1):
    """Accept one connection and echo ``count`` messages back."""
    result = {}

    def server():
        sock = yield from listener.accept()
        result["sock"] = sock
        for _ in range(count):
            n, payload = yield from sock.recv()
            yield from sock.send(n, payload=payload)

    env.process(server())
    return result


class TestListenConnect:
    def test_connect_and_exchange(self, env, layer, containers, runner):
        client_c, server_c, __ = containers
        listener = layer.listen(server_c, 8080)
        _echo_server(env, listener)

        def client():
            sock = layer.socket(client_c)
            decision = yield from sock.connect(server_c.ip, 8080)
            yield from sock.send(1000, payload="hi")
            n, payload = yield from sock.recv()
            return decision.mechanism, n, payload

        mechanism, n, payload = runner(client())
        assert mechanism is Mechanism.SHM
        assert n == 1000 and payload == "hi"

    def test_interhost_socket_uses_rdma(self, env, layer, containers,
                                        runner):
        client_c, __, remote_c = containers
        listener = layer.listen(remote_c, 9000)
        _echo_server(env, listener)

        def client():
            sock = layer.socket(client_c)
            yield from sock.connect(remote_c.ip, 9000)
            yield from sock.send(100, payload="x")
            yield from sock.recv()
            return sock.mechanism

        assert runner(client()) is Mechanism.RDMA

    def test_connect_refused_without_listener(self, env, layer, containers,
                                              runner):
        client_c, server_c, __ = containers

        def client():
            sock = layer.socket(client_c)
            yield from sock.connect(server_c.ip, 1234)

        with pytest.raises(ConnectionRefused):
            runner(client())

    def test_double_bind_rejected(self, layer, containers):
        __, server_c, __ = containers
        layer.listen(server_c, 8080)
        with pytest.raises(SocketError):
            layer.listen(server_c, 8080)

    def test_closed_listener_refuses(self, env, layer, containers, runner):
        client_c, server_c, __ = containers
        listener = layer.listen(server_c, 8080)
        listener.close()

        def client():
            sock = layer.socket(client_c)
            yield from sock.connect(server_c.ip, 8080)

        with pytest.raises(ConnectionRefused):
            runner(client())

    def test_port_can_be_rebound_after_close(self, layer, containers):
        __, server_c, __ = containers
        layer.listen(server_c, 8080).close()
        layer.listen(server_c, 8080)  # no error

    def test_listen_requires_attached_container(self, cluster, layer):
        stray = cluster.submit(ContainerSpec("stray"))
        with pytest.raises(SocketError):
            layer.listen(stray, 80)

    def test_peer_and_local_addr_set(self, env, layer, containers, runner):
        client_c, server_c, __ = containers
        listener = layer.listen(server_c, 8081)
        _echo_server(env, listener)

        def client():
            sock = layer.socket(client_c)
            yield from sock.connect(server_c.ip, 8081)
            yield from sock.send(10, payload=None)
            yield from sock.recv()
            return sock

        sock = runner(client())
        assert sock.peer_addr.ip == server_c.ip
        assert sock.peer_addr.port == 8081


class TestStreamSemantics:
    def test_recv_exactly_reassembles(self, env, layer, containers, runner):
        client_c, server_c, __ = containers
        listener = layer.listen(server_c, 8080)
        total = {}

        def server():
            sock = yield from listener.accept()
            n, __ = yield from sock.recv_exactly(5000)
            total["n"] = n

        env.process(server())

        def client():
            sock = layer.socket(client_c)
            yield from sock.connect(server_c.ip, 8080)
            for _ in range(5):
                yield from sock.send(1000)

        runner(client())
        env.run(until=env.now + 0.01)
        assert total["n"] == 5000

    def test_large_send_fragments(self, env, layer, containers, runner):
        from repro.core.sockets import MAX_FRAGMENT_BYTES

        client_c, server_c, __ = containers
        listener = layer.listen(server_c, 8080)
        got = {}

        def server():
            sock = yield from listener.accept()
            n, __ = yield from sock.recv_exactly(3 * MAX_FRAGMENT_BYTES)
            got["n"] = n

        env.process(server())

        def client():
            sock = layer.socket(client_c)
            yield from sock.connect(server_c.ip, 8080)
            sent = yield from sock.send(3 * MAX_FRAGMENT_BYTES)
            return sent

        assert runner(client()) == 3 * MAX_FRAGMENT_BYTES
        env.run(until=env.now + 0.05)
        assert got["n"] == 3 * MAX_FRAGMENT_BYTES

    def test_recv_returns_available_prefix(self, env, layer, containers,
                                           runner):
        client_c, server_c, __ = containers
        listener = layer.listen(server_c, 8080)
        chunks = []

        def server():
            sock = yield from listener.accept()
            n1, __ = yield from sock.recv(max_bytes=300)
            n2, __ = yield from sock.recv(max_bytes=10_000)
            chunks.extend([n1, n2])

        env.process(server())

        def client():
            sock = layer.socket(client_c)
            yield from sock.connect(server_c.ip, 8080)
            yield from sock.send(1000)

        runner(client())
        env.run(until=env.now + 0.01)
        assert chunks == [300, 700]

    def test_send_recv_validation(self, env, layer, containers, runner):
        client_c, server_c, __ = containers
        listener = layer.listen(server_c, 8080)
        _echo_server(env, listener)

        def client():
            sock = layer.socket(client_c)
            yield from sock.connect(server_c.ip, 8080)
            return sock

        sock = runner(client())

        def bad_send():
            yield from sock.send(0)

        process = env.process(bad_send())
        with pytest.raises(SocketError):
            env.run(until=process)

    def test_unconnected_socket_rejects_io(self, env, layer, containers):
        sock = layer.socket(containers[0])

        def io():
            yield from sock.send(10)

        process = env.process(io())
        with pytest.raises(SocketError):
            env.run(until=process)

    def test_closed_socket_rejects_io(self, env, layer, containers, runner):
        client_c, server_c, __ = containers
        listener = layer.listen(server_c, 8080)
        _echo_server(env, listener)

        def client():
            sock = layer.socket(client_c)
            yield from sock.connect(server_c.ip, 8080)
            sock.close()
            yield from sock.send(10)

        with pytest.raises(SocketError):
            runner(client())


class TestShutdownSemantics:
    def test_shutdown_delivers_eof(self, env, layer, containers, runner):
        client_c, server_c, __ = containers
        listener = layer.listen(server_c, 8080)
        result = {}

        def server():
            sock = yield from listener.accept()
            n1, payload = yield from sock.recv()
            n2, p2 = yield from sock.recv()     # peer shut down -> EOF
            n3, p3 = yield from sock.recv()     # EOF is sticky
            result["got"] = (n1, payload, n2, p2, n3, p3)

        env.process(server())

        def client():
            sock = layer.socket(client_c)
            yield from sock.connect(server_c.ip, 8080)
            yield from sock.send(500, payload="bye")
            yield from sock.shutdown()

        runner(client())
        env.run(until=env.now + 0.01)
        assert result["got"] == (500, "bye", 0, None, 0, None)

    def test_eof_after_buffered_data_drained(self, env, layer, containers,
                                             runner):
        client_c, server_c, __ = containers
        listener = layer.listen(server_c, 8080)
        result = {}

        def server():
            sock = yield from listener.accept()
            yield env.timeout(0.005)  # let data + FIN queue up
            n1, __ = yield from sock.recv()
            n2, __ = yield from sock.recv()
            n3, __ = yield from sock.recv()
            result["got"] = (n1, n2, n3)

        env.process(server())

        def client():
            sock = layer.socket(client_c)
            yield from sock.connect(server_c.ip, 8080)
            yield from sock.send(100)
            yield from sock.send(200)
            yield from sock.shutdown()

        runner(client())
        env.run(until=env.now + 0.02)
        # Buffered data must be fully readable before EOF appears.
        assert result["got"][0] + result["got"][1] == 300
        assert result["got"][2] == 0

    def test_shutdown_unconnected_is_noop(self, env, layer, containers,
                                          runner):
        sock = layer.socket(containers[0])

        def go():
            yield from sock.shutdown()

        runner(go())
        assert sock.closed

    def test_send_after_shutdown_rejected(self, env, layer, containers,
                                          runner):
        client_c, server_c, __ = containers
        layer.listen(server_c, 8080)

        def client():
            sock = layer.socket(client_c)
            yield from sock.connect(server_c.ip, 8080)
            yield from sock.shutdown()
            yield from sock.send(10)

        from repro.errors import SocketError
        with pytest.raises(SocketError):
            runner(client())

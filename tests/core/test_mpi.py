"""Behaviour tests for the MPI-over-verbs translation layer."""

import pytest

from repro.cluster import ContainerSpec
from repro.core import Communicator
from repro.errors import FreeFlowError


@pytest.fixture
def ranks4(cluster, network):
    containers = [
        cluster.submit(
            ContainerSpec(f"rank{i}", pinned_host="h1" if i < 2 else "h2")
        )
        for i in range(4)
    ]
    for c in containers:
        network.attach(c)
    return containers


@pytest.fixture
def comm(network, ranks4):
    return Communicator(network, ranks4)


def _run_all(env, comm, make_gen):
    """Run make_gen(rank_endpoint) on every rank concurrently."""
    results = {}

    def runner(rank):
        endpoint = comm.endpoint(rank)
        value = yield from make_gen(endpoint)
        results[rank] = value

    procs = [env.process(runner(r)) for r in range(comm.size)]

    def waiter():
        for p in procs:
            yield p

    done = env.process(waiter())
    env.run(until=done)
    return results


class TestConstruction:
    def test_needs_ranks(self, network):
        with pytest.raises(FreeFlowError):
            Communicator(network, [])

    def test_duplicates_rejected(self, network, ranks4):
        with pytest.raises(FreeFlowError):
            Communicator(network, [ranks4[0], ranks4[0]])

    def test_rank_bounds_checked(self, comm):
        with pytest.raises(FreeFlowError):
            comm.endpoint(99)


class TestPointToPoint:
    def test_send_recv(self, env, comm):
        def logic(ep):
            if ep.rank == 0:
                yield from ep.send(1, 1024, payload="zero-to-one")
                return None
            if ep.rank == 1:
                n, payload = yield from ep.recv(0)
                return n, payload
            return None

        results = _run_all(env, comm, logic)
        assert results[1] == (1024, "zero-to-one")

    def test_tag_matching_out_of_order(self, env, comm):
        def logic(ep):
            if ep.rank == 0:
                yield from ep.send(1, 64, payload="first", tag=7)
                yield from ep.send(1, 64, payload="second", tag=9)
                return None
            if ep.rank == 1:
                __, second = yield from ep.recv(0, tag=9)
                __, first = yield from ep.recv(0, tag=7)
                return first, second
            return None

        results = _run_all(env, comm, logic)
        assert results[1] == ("first", "second")

    def test_self_send_rejected(self, env, comm):
        def logic(ep):
            if ep.rank == 0:
                yield from ep.send(0, 10)
            else:
                yield ep.env.timeout(0)
            return None

        with pytest.raises(FreeFlowError):
            _run_all(env, comm, logic)

    def test_sendrecv_exchanges(self, env, comm):
        def logic(ep):
            peer = (ep.rank + 1) % comm.size
            source = (ep.rank - 1) % comm.size
            __, incoming = yield from ep.sendrecv(
                peer, 128, f"from{ep.rank}", source
            )
            return incoming

        results = _run_all(env, comm, logic)
        assert results[0] == "from3"
        assert results[3] == "from2"


class TestCollectives:
    def test_barrier_synchronises(self, env, comm):
        after = {}

        def logic(ep):
            # Stagger arrival; everyone must leave after the last arrival.
            yield ep.env.timeout(0.001 * ep.rank)
            yield from ep.barrier()
            after[ep.rank] = ep.env.now
            return None

        _run_all(env, comm, logic)
        assert min(after.values()) >= 0.003

    def test_bcast_distributes_root_value(self, env, comm):
        def logic(ep):
            value = yield from ep.bcast(
                root=2, nbytes=256,
                payload=("secret" if ep.rank == 2 else None),
            )
            return value

        results = _run_all(env, comm, logic)
        assert all(v == "secret" for v in results.values())

    def test_allreduce_sums_everyone(self, env, comm):
        def logic(ep):
            total = yield from ep.allreduce(float(ep.rank + 1), 4096)
            return total

        results = _run_all(env, comm, logic)
        assert all(v == pytest.approx(10.0) for v in results.values())

    def test_allreduce_custom_op(self, env, comm):
        def logic(ep):
            best = yield from ep.allreduce(
                float(ep.rank), 1024, op=max
            )
            return best

        results = _run_all(env, comm, logic)
        assert all(v == 3.0 for v in results.values())

    def test_gather_collects_at_root(self, env, comm):
        def logic(ep):
            gathered = yield from ep.gather(0, 64, ep.rank * 10)
            return gathered

        results = _run_all(env, comm, logic)
        assert results[0] == [0, 10, 20, 30]
        assert results[1] is None

    def test_allgather_everyone_gets_all(self, env, comm):
        def logic(ep):
            values = yield from ep.allgather(64, f"r{ep.rank}")
            return values

        results = _run_all(env, comm, logic)
        for rank in range(4):
            assert results[rank] == ["r0", "r1", "r2", "r3"]

    def test_single_rank_allreduce_is_identity(self, env, cluster, network):
        lone = cluster.submit(ContainerSpec("lone"))
        network.attach(lone)
        comm = Communicator(network, [lone])

        def logic(ep):
            value = yield from ep.allreduce(5.0, 100)
            return value

        assert _run_all(env, comm, logic)[0] == 5.0


class TestNonBlocking:
    def test_isend_irecv_overlap(self, env, comm):
        """A rank posts all receives up front, then all sends — only
        possible with non-blocking ops."""

        def logic(ep):
            if ep.rank == 0:
                requests = [
                    ep.isend(1, 256, payload=f"m{i}", tag=i)
                    for i in range(4)
                ]
                yield from ep.waitall(requests)
                return None
            if ep.rank == 1:
                requests = [ep.irecv(0, tag=i) for i in range(4)]
                results = yield from ep.waitall(requests)
                return [payload for __, payload in results]
            return None

        results = _run_all(env, comm, logic)
        assert results[1] == ["m0", "m1", "m2", "m3"]

    def test_irecv_before_send_arrives(self, env, comm):
        def logic(ep):
            if ep.rank == 1:
                request = ep.irecv(0)
                assert not request.done
                n, payload = yield from request.wait()
                return n, payload
            if ep.rank == 0:
                yield ep.env.timeout(0.001)
                yield from ep.send(1, 512, payload="late")
                return None
            return None

        results = _run_all(env, comm, logic)
        assert results[1] == (512, "late")

    def test_request_done_flag(self, env, comm):
        def logic(ep):
            if ep.rank == 0:
                request = ep.isend(1, 64, payload="x")
                yield from request.wait()
                assert request.done
                return None
            if ep.rank == 1:
                yield from ep.recv(0)
                return None
            return None

        _run_all(env, comm, logic)

    def test_overlapping_compute_and_communication(self, env, comm):
        """The point of isend: communication hides behind compute."""

        def logic(ep):
            if ep.rank == 0:
                started = ep.env.now
                request = ep.isend(1, 8 << 20, payload="big")
                yield ep.env.timeout(0.002)     # "compute"
                yield from request.wait()
                return ep.env.now - started
            if ep.rank == 1:
                yield from ep.recv(0)
                return None
            return None

        results = _run_all(env, comm, logic)
        # The 8 MiB transfer (~2 ms on RDMA... but rank0/rank1 share h1:
        # shm ~0.9 ms) hides inside the 2 ms compute window.
        assert results[0] < 0.004


class TestReduceScatter:
    def test_reduce_sums_at_root(self, env, comm):
        def logic(ep):
            result = yield from ep.reduce(0, float(ep.rank + 1), 1024)
            return result

        results = _run_all(env, comm, logic)
        assert results[0] == pytest.approx(10.0)
        assert results[1] is None and results[3] is None

    def test_reduce_with_nonzero_root(self, env, comm):
        def logic(ep):
            result = yield from ep.reduce(2, float(ep.rank), 512, op=max)
            return result

        results = _run_all(env, comm, logic)
        assert results[2] == 3.0
        assert results[0] is None

    def test_scatter_distributes_slices(self, env, comm):
        def logic(ep):
            values = [f"slice{i}" for i in range(comm.size)] \
                if ep.rank == 1 else None
            slice_ = yield from ep.scatter(1, 256, values=values)
            return slice_

        results = _run_all(env, comm, logic)
        for rank in range(4):
            assert results[rank] == f"slice{rank}"

    def test_scatter_validates_root_values(self, env, comm):
        def logic(ep):
            if ep.rank == 0:
                yield from ep.scatter(0, 64, values=[1, 2])  # wrong length
            else:
                yield ep.env.timeout(0)
            return None

        with pytest.raises(FreeFlowError):
            _run_all(env, comm, logic)

    def test_reduce_then_bcast_equals_allreduce(self, env, comm):
        def logic(ep):
            partial = yield from ep.reduce(0, float(ep.rank + 1), 1024)
            total = yield from ep.bcast(0, 1024, payload=partial)
            direct = yield from ep.allreduce(float(ep.rank + 1), 1024,
                                             tag=1 << 27)
            return total, direct

        results = _run_all(env, comm, logic)
        for total, direct in results.values():
            assert total == pytest.approx(direct) == pytest.approx(10.0)

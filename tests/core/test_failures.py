"""Failure-injection tests: host death, connection reset, repair.

Paper §2.1 motivates orchestrated containers with exactly this: "a
stopped container can be quickly replaced by a new one on the same or
another host" — these tests exercise the whole loop: fail, reset,
replace, repair.
"""

import pytest

from repro.cluster import ContainerSpec, ContainerStatus
from repro.errors import ConnectionReset, PlacementError, UnknownContainer
from repro.transports import Mechanism


@pytest.fixture
def split_pair(cluster, network):
    a = cluster.submit(ContainerSpec("app", pinned_host="h1"))
    b = cluster.submit(ContainerSpec("db", pinned_host="h2"))
    network.attach(a)
    network.attach(b)
    return a, b


class TestClusterFailureHandling:
    def test_fail_host_stops_and_forgets_containers(self, cluster,
                                                    split_pair):
        lost = cluster.fail_host("h2")
        assert lost == ["db"]
        with pytest.raises(UnknownContainer):
            cluster.container("db")
        assert not cluster.is_host_up("h2")

    def test_failed_host_not_schedulable(self, cluster, split_pair):
        cluster.fail_host("h2")
        with pytest.raises(PlacementError):
            cluster.submit(ContainerSpec("new", pinned_host="h2"))
        # Spread scheduling avoids the dead host too.
        placed = cluster.submit(ContainerSpec("auto"))
        assert placed.host.name == "h1"

    def test_recover_host_restores_scheduling(self, cluster, split_pair):
        cluster.fail_host("h2")
        cluster.recover_host("h2")
        assert cluster.is_host_up("h2")
        placed = cluster.submit(ContainerSpec("back", pinned_host="h2"))
        assert placed.host.name == "h2"

    def test_resubmit_after_failure_allowed(self, cluster, split_pair):
        cluster.fail_host("h2")
        replacement = cluster.submit(ContainerSpec("db", pinned_host="h1"))
        assert replacement.status is ContainerStatus.RUNNING
        assert replacement.host.name == "h1"


class TestNetworkFailureHandling:
    def test_connections_reset_on_host_failure(self, env, cluster, network,
                                               split_pair):
        def go():
            connection = yield from network.connect_containers("app", "db")
            outcome = {}

            def receiver():
                try:
                    yield from connection.b.recv()
                    outcome["result"] = "message"
                except ConnectionReset:
                    outcome["result"] = "reset"

            env.process(receiver())
            yield env.timeout(0.001)
            broken = network.handle_host_failure("h2")
            yield env.timeout(0.001)
            return connection, broken, outcome

        process = env.process(go())
        connection, broken, outcome = env.run(until=process)
        assert broken == [connection]
        assert connection.failed
        assert outcome["result"] == "reset"

    def test_failed_endpoint_leaves_overlay(self, env, cluster, network,
                                            split_pair):
        __, db = split_pair
        ip = db.ip

        def go():
            yield from network.connect_containers("app", "db")

        env.run(until=env.process(go()))
        network.handle_host_failure("h2")
        with pytest.raises(UnknownContainer):
            network.orchestrator.lookup("db")
        with pytest.raises(UnknownContainer):
            network.orchestrator.lookup_by_ip(ip)

    def test_repair_requires_prior_failure(self, env, cluster, network,
                                           split_pair, runner):
        def go():
            connection = yield from network.connect_containers("app", "db")
            yield from network.repair_connection(connection)

        from repro.errors import OrchestrationError
        with pytest.raises(OrchestrationError):
            runner(go())

    def test_full_fail_replace_repair_loop(self, env, cluster, network,
                                           split_pair, runner):
        """The paper's replacement story, end to end."""

        def go():
            connection = yield from network.connect_containers("app", "db")
            assert connection.mechanism is Mechanism.RDMA
            yield from connection.a.send(1024, payload="before")
            yield from connection.b.recv()

            network.handle_host_failure("h2")
            assert connection.failed

            # Replace the db container on the surviving host.
            replacement = cluster.submit(
                ContainerSpec("db", pinned_host="h1")
            )
            network.attach(replacement)
            decision = yield from network.repair_connection(connection)

            # Now co-located: the repaired channel is shared memory.
            assert decision.mechanism is Mechanism.SHM
            yield from connection.a.send(1024, payload="after")
            message = yield from connection.b.recv()
            return connection, message.payload

        connection, payload = runner(go())
        assert not connection.failed
        assert payload == "after"
        assert connection.mechanism is Mechanism.SHM

    def test_surviving_connections_unaffected(self, env, cluster, network,
                                              split_pair, runner):
        survivor_a = cluster.submit(ContainerSpec("s1", pinned_host="h1"))
        survivor_b = cluster.submit(ContainerSpec("s2", pinned_host="h1"))
        network.attach(survivor_a)
        network.attach(survivor_b)

        def go():
            doomed = yield from network.connect_containers("app", "db")
            healthy = yield from network.connect_containers("s1", "s2")
            network.handle_host_failure("h2")
            assert doomed.failed and not healthy.failed
            yield from healthy.a.send(100, payload="still works")
            message = yield from healthy.b.recv()
            return message.payload

        assert runner(go()) == "still works"

"""End-to-end tests for the watch-driven FlowReconciler.

The acceptance bar for the control-plane refactor: live migration, host
failure + replacement, and runtime NIC-capability changes are handled
*entirely* by the reconciler — no test here calls ``network.rebind`` or
``network.repair_connection`` — and message conservation holds across
every channel swap.
"""

import pytest

from repro.cluster import ContainerSpec
from repro.core import FlowState, MigrationController
from repro.errors import ConnectionReset
from repro.transports import Mechanism


@pytest.fixture
def reconciled(network):
    network.reconciler.start()
    return network.reconciler


class TestExternalRelocate:
    def test_published_move_triggers_rebind(self, env, cluster, network,
                                            three_containers, reconciled,
                                            runner):
        """Nobody calls rebind: the watch pump reacts to the KV event."""

        def go():
            conn = yield from network.connect_containers("web", "cache")
            assert conn.mechanism is Mechanism.SHM
            cluster.relocate("cache", "h2")
            network.orchestrator.refresh_location("cache")
            yield from reconciled.wait_settled("cache")
            return conn

        conn = runner(go())
        assert conn.mechanism is Mechanism.RDMA
        assert conn.state is FlowState.ACTIVE
        assert conn.generation == 2
        assert reconciled.rebinds == 1

    def test_relocate_conserves_in_flight_messages(self, env, cluster,
                                                   network, three_containers,
                                                   reconciled, runner):
        def go():
            conn = yield from network.connect_containers("web", "cache")
            yield from conn.a.send(512, payload="precious")
            cluster.relocate("cache", "h2")
            network.orchestrator.refresh_location("cache")
            yield from reconciled.wait_settled("cache")
            message = yield from conn.b.recv()
            return message.payload

        assert runner(go()) == "precious"

    def test_unrelated_flows_left_alone(self, env, cluster, network,
                                        three_containers, reconciled,
                                        runner):
        def go():
            moved = yield from network.connect_containers("web", "cache")
            bystander = yield from network.connect_containers("web", "db")
            cluster.relocate("cache", "h2")
            network.orchestrator.refresh_location("cache")
            yield from reconciled.wait_settled()
            return moved, bystander

        moved, bystander = runner(go())
        assert moved.generation == 2
        assert bystander.generation == 1


class TestMigrationThroughReconciler:
    def test_live_migration_is_reconciler_driven(self, env, cluster, network,
                                                 three_containers,
                                                 reconciled, runner):
        controller = MigrationController(network)
        counters = {"delivered": 0}

        def go():
            conn = yield from network.connect_containers("web", "cache")
            assert conn.mechanism is Mechanism.SHM
            stop = {"v": False}

            def traffic():
                while not stop["v"]:
                    yield from conn.a.send(32 * 1024)
                    yield from conn.b.recv()
                    counters["delivered"] += 1

            env.process(traffic())
            yield env.timeout(0.002)
            report = yield from controller.live_migrate(
                "cache", "h2", state_bytes=10e6
            )
            at_switch = counters["delivered"]
            yield env.timeout(0.002)
            stop["v"] = True
            yield env.timeout(0.01)
            sent = (conn.channel.lane_ab.stats.messages_sent
                    + conn.channel.lane_ba.stats.messages_sent)
            received = (conn.channel.lane_ab.stats.messages_delivered
                        + conn.channel.lane_ba.stats.messages_delivered)
            return conn, report, at_switch, sent, received

        conn, report, at_switch, sent, received = runner(go())
        assert conn.mechanism is Mechanism.RDMA
        assert conn.state is FlowState.ACTIVE
        assert report.mechanism_changes == [(Mechanism.SHM, Mechanism.RDMA)]
        assert reconciled.rebinds == 1
        assert at_switch > 0
        assert counters["delivered"] > at_switch  # flowed after the move
        assert sent == received  # nothing lost across the swap

    def test_migration_without_pumps_uses_same_primitive(
        self, env, cluster, network, three_containers, runner
    ):
        """Reconciler not started: the controller invokes it directly."""
        controller = MigrationController(network)

        def go():
            conn = yield from network.connect_containers("web", "cache")
            report = yield from controller.live_migrate(
                "cache", "h2", state_bytes=10e6
            )
            return conn, report

        conn, report = runner(go())
        assert conn.mechanism is Mechanism.RDMA
        assert network.reconciler.rebinds == 1
        assert report.rebound_connections == 1


class TestFailureThroughReconciler:
    def test_bare_cluster_failure_breaks_flows(self, env, cluster, network,
                                               three_containers, reconciled,
                                               runner):
        """Only the *cluster* is told about the failure; the reconciler
        observes the host-liveness watch and does the network side."""

        def go():
            conn = yield from network.connect_containers("web", "db")
            outcome = {}

            def receiver():
                try:
                    yield from conn.b.recv()
                    outcome["result"] = "message"
                except ConnectionReset:
                    outcome["result"] = "reset"

            env.process(receiver())
            yield env.timeout(0.001)
            cluster.fail_host("h2")  # nobody calls handle_host_failure
            yield from reconciled.wait_settled()
            return conn, outcome

        conn, outcome = runner(go())
        assert conn.state is FlowState.BROKEN
        assert conn.failed
        assert outcome["result"] == "reset"
        with pytest.raises(Exception):
            network.orchestrator.lookup("db")

    def test_replacement_attach_triggers_auto_repair(self, env, cluster,
                                                     network,
                                                     three_containers,
                                                     reconciled, runner):
        """The full §2.1 loop with zero manual repair calls."""

        def go():
            conn = yield from network.connect_containers("web", "db")
            yield from conn.a.send(1024, payload="before")
            yield from conn.b.recv()
            cluster.fail_host("h2")
            yield from reconciled.wait_settled()
            assert conn.failed

            replacement = cluster.submit(ContainerSpec("db",
                                                       pinned_host="h1"))
            network.attach(replacement)
            yield from reconciled.wait_settled()

            assert conn.state is FlowState.ACTIVE
            yield from conn.a.send(1024, payload="after")
            message = yield from conn.b.recv()
            return conn, message.payload

        conn, payload = runner(go())
        assert payload == "after"
        assert conn.mechanism is Mechanism.SHM  # replacement is co-located
        assert reconciled.repairs == 1

    def test_handle_host_failure_is_pump_idempotent(self, env, cluster,
                                                    network,
                                                    three_containers,
                                                    reconciled, runner):
        """The synchronous client and the watch pump both observe one
        failure; the second observation is a no-op."""

        def go():
            conn = yield from network.connect_containers("web", "db")
            broken = network.handle_host_failure("h2")
            yield from reconciled.wait_settled()
            return conn, broken

        conn, broken = runner(go())
        assert broken == [conn]
        assert reconciled.failures_handled == 1


class TestCapabilityChange:
    def test_rdma_flip_moves_flows_to_tcp(self, env, cluster, network,
                                          three_containers, reconciled,
                                          runner):
        """Satellite: runtime NIC-capability change in the registry.

        Disabling RDMA+DPDK on h2 re-decides the inter-host flow down to
        kernel TCP; the co-located shm pair is untouched.  No message is
        lost across the rebind.
        """

        def go():
            shm_pair = yield from network.connect_containers("web", "cache")
            inter = yield from network.connect_containers("web", "db")
            assert inter.mechanism is Mechanism.RDMA
            yield from inter.a.send(2048, payload="carried-over")
            network.orchestrator.set_nic_capability("h2", rdma=False,
                                                    dpdk=False)
            yield from reconciled.wait_settled()
            message = yield from inter.b.recv()
            return shm_pair, inter, message.payload

        shm_pair, inter, payload = runner(go())
        assert inter.mechanism is Mechanism.TCP
        assert inter.state is FlowState.ACTIVE
        assert inter.generation == 2
        assert payload == "carried-over"  # conserved across the rebind
        assert shm_pair.mechanism is Mechanism.SHM
        assert shm_pair.generation == 1  # untouched

    def test_capability_restore_moves_back(self, env, cluster, network,
                                           three_containers, reconciled,
                                           runner):
        def go():
            inter = yield from network.connect_containers("web", "db")
            network.orchestrator.set_nic_capability("h2", rdma=False,
                                                    dpdk=False)
            yield from reconciled.wait_settled()
            assert inter.mechanism is Mechanism.TCP
            network.orchestrator.set_nic_capability("h2", rdma=True)
            yield from reconciled.wait_settled()
            return inter

        inter = runner(go())
        assert inter.mechanism is Mechanism.RDMA
        assert inter.generation == 3

    def test_unchanged_decision_skips_rebind(self, env, cluster, network,
                                             three_containers, reconciled,
                                             runner):
        def go():
            shm_pair = yield from network.connect_containers("web", "cache")
            network.orchestrator.set_nic_capability("h1", dpdk=False)
            yield from reconciled.wait_settled()
            return shm_pair

        shm_pair = runner(go())
        assert shm_pair.generation == 1
        assert reconciled.rebinds == 0
        assert reconciled.capability_rechecks >= 1


class TestLifecycleControls:
    def test_start_is_idempotent(self, network, reconciled):
        procs = network.reconciler._procs
        network.reconciler.start()
        assert network.reconciler._procs is procs

    def test_stop_detaches_watches(self, env, cluster, network,
                                   three_containers, reconciled, runner):
        def go():
            conn = yield from network.connect_containers("web", "cache")
            reconciled.stop()
            cluster.relocate("cache", "h2")
            network.orchestrator.refresh_location("cache")
            yield env.timeout(0.01)
            return conn

        conn = runner(go())
        assert conn.generation == 1  # nobody rebound it
        assert not reconciled.running

    def test_transitions_all_flow_through_table(self, env, cluster, network,
                                                three_containers, runner):
        """Every lifecycle change shows up as a flow.transition event."""
        from repro import telemetry
        from repro.telemetry.events import FLOW_TRANSITION

        with telemetry.session() as handle:
            network.reconciler.start()

            def go():
                conn = yield from network.connect_containers("web", "cache")
                cluster.relocate("cache", "h2")
                network.orchestrator.refresh_location("cache")
                yield from network.reconciler.wait_settled("cache")
                network.close_connection(conn)
                return conn

            conn = runner(go())
            states = [
                e.fields["new"]
                for e in handle.events.of_kind(FLOW_TRANSITION)
                if e.fields["flow"] == conn.flow_id
            ]
        assert states == ["resolving", "active", "paused", "rebinding",
                          "paused", "active", "closed"]

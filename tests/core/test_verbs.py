"""Unit tests for the verbs API objects (no data plane needed)."""

import pytest

from repro.cluster import ContainerSpec
from repro.core import (
    CompletionQueue,
    Opcode,
    QpState,
    WcStatus,
    WorkCompletion,
    WorkRequest,
)
from repro.errors import (
    CompletionError,
    MemoryRegionError,
    QueuePairStateError,
    VerbsError,
)


@pytest.fixture
def vnic(cluster, network):
    container = cluster.submit(ContainerSpec("c", pinned_host="h1"))
    return network.attach(container)


@pytest.fixture
def pd(vnic):
    return vnic.alloc_pd()


@pytest.fixture
def qp(vnic, pd):
    return vnic.create_qp(pd, vnic.create_cq(), vnic.create_cq())


class TestMemoryRegion:
    def test_keys_are_unique(self, vnic, pd):
        a = vnic.reg_mr(pd, 1000)
        b = vnic.reg_mr(pd, 1000)
        assert len({a.lkey, a.rkey, b.lkey, b.rkey}) == 4

    def test_bounds_checking(self, vnic, pd):
        mr = vnic.reg_mr(pd, 100)
        mr.check_range(0, 100)
        with pytest.raises(MemoryRegionError):
            mr.check_range(0, 101)
        with pytest.raises(MemoryRegionError):
            mr.check_range(-1, 10)
        with pytest.raises(MemoryRegionError):
            mr.check_range(95, 10)

    def test_write_read_contents(self, vnic, pd):
        mr = vnic.reg_mr(pd, 1000)
        mr.write(10, 50, "payload")
        assert mr.read(10, 50) == "payload"
        assert mr.bytes_written == 50

    def test_deregistered_mr_rejects_access(self, vnic, pd):
        mr = vnic.reg_mr(pd, 100)
        vnic.dereg_mr(mr)
        with pytest.raises(MemoryRegionError):
            mr.check_range(0, 10)
        assert vnic.lookup_rkey(mr.rkey) is None

    def test_zero_length_rejected(self, vnic, pd):
        with pytest.raises(MemoryRegionError):
            vnic.reg_mr(pd, 0)

    def test_foreign_pd_rejected(self, cluster, network, vnic):
        other_container = cluster.submit(ContainerSpec("o", pinned_host="h1"))
        other_vnic = network.attach(other_container)
        other_pd = other_vnic.alloc_pd()
        with pytest.raises(VerbsError):
            vnic.reg_mr(other_pd, 100)


class TestWorkRequest:
    def test_write_needs_remote_key(self):
        with pytest.raises(VerbsError):
            WorkRequest(opcode=Opcode.WRITE, length=10)

    def test_read_needs_remote_key(self):
        with pytest.raises(VerbsError):
            WorkRequest(opcode=Opcode.READ, length=10)

    def test_recv_needs_mr(self):
        with pytest.raises(VerbsError):
            WorkRequest(opcode=Opcode.RECV, length=10)

    def test_negative_length_rejected(self):
        with pytest.raises(VerbsError):
            WorkRequest(opcode=Opcode.SEND, length=-1)


class TestCompletionQueue:
    def _wc(self, env, wr_id=1):
        return WorkCompletion(
            wr_id=wr_id, status=WcStatus.SUCCESS, opcode=Opcode.SEND,
            byte_len=0, qp_num=1, timestamp=env.now,
        )

    def test_poll_drains_in_order(self, env):
        cq = CompletionQueue(env)
        cq.push(self._wc(env, 1))
        cq.push(self._wc(env, 2))
        polled = cq.poll()
        assert [wc.wr_id for wc in polled] == [1, 2]
        assert cq.poll() == []

    def test_poll_respects_max_entries(self, env):
        cq = CompletionQueue(env)
        for i in range(5):
            cq.push(self._wc(env, i))
        assert len(cq.poll(max_entries=3)) == 3
        assert len(cq) == 2

    def test_poll_invalid_max(self, env):
        cq = CompletionQueue(env)
        with pytest.raises(VerbsError):
            cq.poll(0)

    def test_overrun_raises(self, env):
        cq = CompletionQueue(env, depth=2)
        cq.push(self._wc(env))
        cq.push(self._wc(env))
        with pytest.raises(CompletionError):
            cq.push(self._wc(env))
        assert cq.overflowed

    def test_wait_blocks_until_completion(self, env, runner):
        cq = CompletionQueue(env)

        def waiter():
            wc = yield from cq.wait()
            return wc.wr_id

        def pusher():
            yield env.timeout(1)
            cq.push(self._wc(env, 42))

        env.process(pusher())
        process = env.process(waiter())
        assert env.run(until=process) == 42

    def test_bad_depth(self, env):
        with pytest.raises(VerbsError):
            CompletionQueue(env, depth=0)


class TestQueuePairStateMachine:
    def test_legal_progression(self, qp):
        assert qp.state is QpState.RESET
        for state in (QpState.INIT, QpState.RTR, QpState.RTS):
            qp.modify(state)
        assert qp.state is QpState.RTS

    def test_illegal_jump_rejected(self, qp):
        with pytest.raises(QueuePairStateError):
            qp.modify(QpState.RTS)  # RESET -> RTS is illegal

    def test_post_send_requires_rts(self, env, qp):
        wr = WorkRequest(opcode=Opcode.SEND, length=10)

        def post():
            yield from qp.post_send(wr)

        process = env.process(post())
        with pytest.raises(QueuePairStateError):
            env.run(until=process)

    def test_post_recv_requires_at_least_init(self, vnic, pd, qp):
        mr = vnic.reg_mr(pd, 100)
        wr = WorkRequest(opcode=Opcode.RECV, length=10, local_mr=mr)
        with pytest.raises(QueuePairStateError):
            qp.post_recv(wr)
        qp.modify(QpState.INIT)
        qp.post_recv(wr)
        assert len(qp.rq.items) == 1

    def test_post_recv_rejects_send_opcode(self, vnic, pd, qp):
        qp.modify(QpState.INIT)
        mr = vnic.reg_mr(pd, 100)
        with pytest.raises(VerbsError):
            qp.post_recv(WorkRequest(opcode=Opcode.SEND, length=10,
                                     local_mr=mr))

    def test_error_state_flushes_receives(self, vnic, pd, qp):
        qp.modify(QpState.INIT)
        mr = vnic.reg_mr(pd, 100)
        qp.post_recv(WorkRequest(opcode=Opcode.RECV, length=10, local_mr=mr,
                                 wr_id=7))
        qp.modify(QpState.ERROR)
        flushed = qp.recv_cq.poll()
        assert len(flushed) == 1
        assert flushed[0].status is WcStatus.WR_FLUSH_ERROR
        assert flushed[0].wr_id == 7

    def test_qp_numbers_unique(self, vnic, pd):
        a = vnic.create_qp(pd, vnic.create_cq(), vnic.create_cq())
        b = vnic.create_qp(pd, vnic.create_cq(), vnic.create_cq())
        assert a.qp_num != b.qp_num

    def test_foreign_pd_rejected(self, cluster, network, vnic):
        other = network.attach(
            cluster.submit(ContainerSpec("x", pinned_host="h2"))
        )
        other_pd = other.alloc_pd()
        with pytest.raises(VerbsError):
            vnic.create_qp(other_pd, vnic.create_cq(), vnic.create_cq())

"""Tests for library-layer rate limiting of kernel-bypass traffic."""

import pytest

from repro.cluster import ContainerSpec
from repro.core import FreeFlowNetwork, TokenBucket
from repro.hardware import gbps
from repro.metrics import run_stream


class TestTokenBucket:
    def test_validation(self, env):
        with pytest.raises(ValueError):
            TokenBucket(env, rate_bytes_per_s=0)
        with pytest.raises(ValueError):
            TokenBucket(env, 100, burst_bytes=0)

    def test_burst_passes_instantly(self, env, runner):
        bucket = TokenBucket(env, rate_bytes_per_s=1000, burst_bytes=500)

        def go():
            yield from bucket.take(500)
            return env.now

        assert runner(go()) == 0
        assert bucket.delays_imposed == 0

    def test_excess_is_delayed_at_rate(self, env, runner):
        bucket = TokenBucket(env, rate_bytes_per_s=1000, burst_bytes=100)

        def go():
            yield from bucket.take(100)   # burst
            yield from bucket.take(1000)  # must wait 1 second
            return env.now

        assert runner(go()) == pytest.approx(1.0)
        assert bucket.delays_imposed == 1

    def test_tokens_refill_over_time(self, env, runner):
        bucket = TokenBucket(env, rate_bytes_per_s=1000, burst_bytes=1000)

        def go():
            yield from bucket.take(1000)
            yield env.timeout(0.5)        # 500 tokens accrue
            started = env.now
            yield from bucket.take(500)
            return env.now - started

        assert runner(go()) == pytest.approx(0.0)

    def test_concurrent_takers_share_fairly(self, env):
        bucket = TokenBucket(env, rate_bytes_per_s=1000, burst_bytes=1)
        finished = []

        def taker(name):
            yield from bucket.take(500)
            finished.append((env.now, name))

        env.process(taker("a"))
        env.process(taker("b"))
        env.run()
        # 1000 tokens total at 1000 B/s: everything done around t=1.
        assert finished[-1][0] == pytest.approx(1.0, rel=0.05)

    def test_negative_take_rejected(self, env):
        bucket = TokenBucket(env, 100)

        def go():
            yield from bucket.take(-1)

        process = env.process(go())
        with pytest.raises(ValueError):
            env.run(until=process)


class TestTenantRateLimits:
    def _network(self, cluster, limit_gbps):
        return FreeFlowNetwork(
            cluster,
            tenant_rate_limits={"capped": gbps(limit_gbps)},
        )

    def _connect(self, env, network, src, dst):
        def go():
            connection = yield from network.connect_containers(src, dst)
            return connection

        return env.run(until=env.process(go()))

    def test_capped_tenant_is_shaped(self, env, cluster):
        network = self._network(cluster, limit_gbps=5)
        a = cluster.submit(ContainerSpec("a", tenant="capped",
                                         pinned_host="h1"))
        b = cluster.submit(ContainerSpec("b", tenant="capped",
                                         pinned_host="h1"))
        network.attach(a)
        network.attach(b)
        connection = self._connect(env, network, "a", "b")
        result = run_stream(env, [(connection.a, connection.b)],
                            duration_s=0.05, hosts=[a.host])
        # A shm pair would do ~76 Gb/s; the cap wins.
        assert result.gbps == pytest.approx(5, rel=0.1)

    def test_uncapped_tenant_unaffected(self, env, cluster):
        network = self._network(cluster, limit_gbps=5)
        a = cluster.submit(ContainerSpec("fa", tenant="free",
                                         pinned_host="h1"))
        b = cluster.submit(ContainerSpec("fb", tenant="free",
                                         pinned_host="h1"))
        network.attach(a)
        network.attach(b)
        connection = self._connect(env, network, "fa", "fb")
        result = run_stream(env, [(connection.a, connection.b)],
                            duration_s=0.02, hosts=[a.host])
        assert result.gbps > 60

    def test_limit_shared_across_tenant_connections(self, env, cluster):
        """Two flows of one capped tenant share one bucket."""
        network = self._network(cluster, limit_gbps=5)
        pairs = []
        for i in range(2):
            a = cluster.submit(ContainerSpec(f"ca{i}", tenant="capped",
                                             pinned_host="h1"))
            b = cluster.submit(ContainerSpec(f"cb{i}", tenant="capped",
                                             pinned_host="h1"))
            network.attach(a)
            network.attach(b)
            connection = self._connect(env, network, f"ca{i}", f"cb{i}")
            pairs.append((connection.a, connection.b))
        host = cluster.host("h1")
        result = run_stream(env, pairs, duration_s=0.05, hosts=[host])
        # Aggregate, not per-flow: still ~5 Gb/s total.
        assert result.gbps == pytest.approx(5, rel=0.15)

    def test_shaping_composes_with_rdma_path(self, env, cluster):
        network = self._network(cluster, limit_gbps=10)
        a = cluster.submit(ContainerSpec("ra", tenant="capped",
                                         pinned_host="h1"))
        b = cluster.submit(ContainerSpec("rb", tenant="capped",
                                         pinned_host="h2"))
        network.attach(a)
        network.attach(b)
        connection = self._connect(env, network, "ra", "rb")
        assert connection.mechanism.value == "rdma"
        result = run_stream(env, [(connection.a, connection.b)],
                            duration_s=0.05, hosts=[a.host, b.host])
        assert result.gbps == pytest.approx(10, rel=0.1)

"""Batched watch consumption in the FlowReconciler: coalesced
WatchBatch handling, batch rebinds, and precise-first resync."""

import pytest

from repro.core import FlowState
from repro.core.flows import FlowReconciler
from repro.transports import Mechanism


@pytest.fixture
def reconciled(network):
    network.reconciler.start()
    return network.reconciler


def spy_batches(reconciler):
    """Record the name-lists handed to reconcile_containers."""
    calls = []
    original = reconciler.reconcile_containers

    def spy(names):
        calls.append(list(names))
        return original(names)

    reconciler.reconcile_containers = spy
    return calls


class TestCoalescedConsumption:
    def test_same_instant_moves_arrive_as_one_batch(self, env, cluster,
                                                    network,
                                                    three_containers,
                                                    reconciled, runner):
        """Two publishes in the same instant coalesce (COALESCE_S=0.0)
        into a single WatchBatch and one batch-rebind cycle."""
        calls = spy_batches(reconciled)

        def go():
            a = yield from network.connect_containers("web", "cache")
            b = yield from network.connect_containers("web", "db")
            cluster.relocate("cache", "h2")
            network.orchestrator.refresh_location("cache")
            cluster.relocate("db", "h1")
            network.orchestrator.refresh_location("db")
            yield from reconciled.wait_settled()
            return a, b

        a, b = runner(go())
        assert calls == [["cache", "db"]]
        assert a.mechanism is Mechanism.RDMA
        assert b.mechanism is Mechanism.SHM
        assert a.state is FlowState.ACTIVE
        assert b.state is FlowState.ACTIVE
        assert reconciled.rebinds == 2
        assert reconciled.reconciliations == 2

    def test_per_event_mode_still_supported(self, env, cluster, network,
                                            three_containers, runner):
        """coalesce_s=None restores per-event delivery: same convergence,
        one cycle per move."""
        reconciler = FlowReconciler(network, coalesce_s=None).start()
        calls = spy_batches(reconciler)

        def go():
            conn = yield from network.connect_containers("web", "cache")
            cluster.relocate("cache", "h2")
            network.orchestrator.refresh_location("cache")
            cluster.relocate("db", "h1")
            network.orchestrator.refresh_location("db")
            yield from reconciler.wait_settled()
            return conn

        conn = runner(go())
        assert calls == [["cache"], ["db"]]  # one cycle per delivery
        assert conn.state is FlowState.ACTIVE
        assert reconciler.rebinds == 1  # db had no flows to rebind


class TestResync:
    def test_precise_resync_replays_dropped_move(self, env, cluster, network,
                                                 three_containers,
                                                 reconciled, runner):
        """A dropped watch delivery (lossy control-plane link) is
        recovered by replaying exactly the missed events from history."""
        kv = network.orchestrator.kv

        def go():
            conn = yield from network.connect_containers("web", "cache")
            notify = kv._notify
            kv._notify = lambda *a, **k: None  # the link eats deliveries
            cluster.relocate("cache", "h2")
            network.orchestrator.refresh_location("cache")
            kv._notify = notify
            yield env.timeout(0.001)
            assert conn.mechanism is Mechanism.SHM  # nobody noticed
            replayed = reconciled.resync()
            yield from reconciled.wait_settled("cache")
            return conn, replayed

        conn, replayed = runner(go())
        assert replayed == 1  # just the missed PUT, nothing else
        assert conn.mechanism is Mechanism.RDMA
        assert conn.state is FlowState.ACTIVE
        assert reconciled.resyncs == 1

    def test_resync_falls_back_to_snapshot_after_compaction(
        self, env, cluster, network, three_containers, reconciled, runner
    ):
        """When history has been compacted past the watch's last
        revision, resync degrades to the snapshot replay and still
        converges."""
        kv = network.orchestrator.kv

        def go():
            conn = yield from network.connect_containers("web", "cache")
            notify = kv._notify
            kv._notify = lambda *a, **k: None
            cluster.relocate("cache", "h2")
            network.orchestrator.refresh_location("cache")
            kv._notify = notify
            kv.compact(kv.revision)  # precise replay now impossible
            replayed = reconciled.resync()
            yield from reconciled.wait_settled("cache")
            return conn, replayed

        conn, replayed = runner(go())
        # Snapshot replay re-publishes every current key (3 containers
        # on the container watch; capability watch replays too).
        assert replayed >= 3
        assert conn.mechanism is Mechanism.RDMA
        assert conn.state is FlowState.ACTIVE

    def test_resync_synthesizes_missed_container_deletes(
        self, env, cluster, network, three_containers, reconciled, runner
    ):
        """Snapshot resync cannot express DELETEs; the reconciler diffs
        KV truth against its last-seen view and drops vanished names."""
        kv = network.orchestrator.kv

        def go():
            yield env.timeout(0.001)  # let include_existing replay land
            assert "db" in reconciled._locations
            notify = kv._notify
            kv._notify = lambda *a, **k: None
            network.detach("db")
            cluster.stop("db")
            cluster.remove("db")
            kv._notify = notify
            kv.compact(kv.revision)
            reconciled.resync()
            yield from reconciled.wait_settled()

        runner(go())
        assert "db" not in reconciled._locations

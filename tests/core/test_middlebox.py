"""Tests for middlebox (IDS/IPS) support under FreeFlow (paper §7)."""

import pytest

from repro.cluster import ContainerSpec
from repro.core import FreeFlowNetwork, Middlebox
from repro.transports import Mechanism


@pytest.fixture
def inspected_network(cluster):
    middlebox = Middlebox(name="dpi")
    network = FreeFlowNetwork(cluster, middlebox=middlebox)
    a = cluster.submit(ContainerSpec("a", pinned_host="h1"))
    b = cluster.submit(ContainerSpec("b", pinned_host="h1"))
    c = cluster.submit(ContainerSpec("c", pinned_host="h2"))
    for x in (a, b, c):
        network.attach(x)
    return network, middlebox


def _connect(env, network, src, dst):
    def go():
        connection = yield from network.connect_containers(src, dst)
        return connection

    return env.run(until=env.process(go()))


def test_inspect_predicate_requires_middlebox(cluster):
    with pytest.raises(ValueError):
        FreeFlowNetwork(cluster, inspect=lambda s, d: True)


def test_traffic_is_inspected_on_shm_path(env, inspected_network, runner):
    network, middlebox = inspected_network
    connection = _connect(env, network, "a", "b")
    assert connection.mechanism is Mechanism.SHM  # bypass still chosen

    def go():
        yield from connection.a.send(4096, payload="clean")
        message = yield from connection.b.recv()
        return message.payload

    assert runner(go()) == "clean"
    assert middlebox.inspected_messages == 1
    assert middlebox.inspected_bytes == 4096


def test_traffic_is_inspected_on_rdma_path(env, inspected_network, runner):
    network, middlebox = inspected_network
    connection = _connect(env, network, "a", "c")
    assert connection.mechanism is Mechanism.RDMA

    def go():
        yield from connection.a.send(1024)
        yield from connection.b.recv()

    runner(go())
    assert middlebox.inspected_messages == 1


def test_ips_verdict_drops_messages(env, cluster, runner):
    ips = Middlebox(
        name="ips",
        verdict=lambda nbytes, payload: payload != "malware",
    )
    network = FreeFlowNetwork(cluster, middlebox=ips)
    a = cluster.submit(ContainerSpec("xa", pinned_host="h1"))
    b = cluster.submit(ContainerSpec("xb", pinned_host="h1"))
    network.attach(a)
    network.attach(b)
    connection = _connect(env, network, "xa", "xb")

    def go():
        blocked = yield from connection.a.send(100, payload="malware")
        allowed = yield from connection.a.send(100, payload="benign")
        message = yield from connection.b.recv()
        return blocked, allowed, message.payload

    blocked, allowed, payload = runner(go())
    assert blocked is None
    assert allowed is not None
    assert payload == "benign"  # the dropped message never arrived
    assert ips.dropped_messages == 1
    assert ips.inspected_messages == 1


def test_inspect_predicate_scopes_inspection(env, cluster, runner):
    middlebox = Middlebox()
    network = FreeFlowNetwork(
        cluster,
        middlebox=middlebox,
        inspect=lambda src, dst: src.tenant != dst.tenant,
    )
    same = cluster.submit(ContainerSpec("s1", tenant="t", pinned_host="h1"))
    same2 = cluster.submit(ContainerSpec("s2", tenant="t", pinned_host="h1"))
    other = cluster.submit(ContainerSpec("o1", tenant="u", pinned_host="h1"))
    for x in (same, same2, other):
        network.attach(x)

    trusted = _connect(env, network, "s1", "s2")
    crossing = _connect(env, network, "s1", "o1")

    def go():
        yield from trusted.a.send(100)
        yield from trusted.b.recv()
        yield from crossing.a.send(100)
        yield from crossing.b.recv()

    runner(go())
    assert middlebox.inspected_messages == 1  # only the cross-tenant flow


def test_inspection_costs_cpu_and_latency(env, cluster):
    """DPI on the shm fast path must slow it down measurably."""
    from repro.metrics import run_pingpong, run_stream

    def build(with_middlebox):
        middlebox = Middlebox() if with_middlebox else None
        network = FreeFlowNetwork(cluster, middlebox=middlebox) \
            if with_middlebox else FreeFlowNetwork(cluster)
        suffix = "m" if with_middlebox else "p"
        a = cluster.submit(ContainerSpec(f"a{suffix}", pinned_host="h1"))
        b = cluster.submit(ContainerSpec(f"b{suffix}", pinned_host="h1"))
        network.attach(a)
        network.attach(b)
        return _connect(env, network, f"a{suffix}", f"b{suffix}")

    plain = build(False)
    inspected = build(True)
    plain_latency = run_pingpong(env, plain.a, plain.b, rounds=30)
    inspected_latency = run_pingpong(env, inspected.a, inspected.b,
                                     rounds=30)
    assert inspected_latency.mean_us() > plain_latency.mean_us() * 1.5

    plain_bw = run_stream(env, [(plain.a, plain.b)], duration_s=0.01)
    inspected_bw = run_stream(env, [(inspected.a, inspected.b)],
                              duration_s=0.01)
    assert inspected_bw.gbps < plain_bw.gbps


def test_migration_keeps_inspection(env, cluster, runner):
    """Rebuilding a channel after migration must re-attach the IDS."""
    from repro.core import MigrationController

    middlebox = Middlebox()
    network = FreeFlowNetwork(cluster, middlebox=middlebox)
    a = cluster.submit(ContainerSpec("ma", pinned_host="h1"))
    b = cluster.submit(ContainerSpec("mb", pinned_host="h1"))
    network.attach(a)
    network.attach(b)
    connection = _connect(env, network, "ma", "mb")
    controller = MigrationController(network)

    def go():
        yield from connection.a.send(100)
        yield from connection.b.recv()
        yield from controller.live_migrate("mb", "h2", state_bytes=1e6)
        yield from connection.a.send(100)
        yield from connection.b.recv()

    runner(go())
    assert middlebox.inspected_messages == 2

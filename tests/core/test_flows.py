"""Unit tests for the flow-lifecycle subsystem (repro.core.flows)."""

import pytest

from repro.cluster import ContainerSpec
from repro.core import FlowState, FlowTable
from repro.errors import FlowStateError
from repro.sim import Environment
from repro.transports import Mechanism


@pytest.fixture
def table(env):
    return FlowTable(env)


class TestStateMachine:
    def test_open_starts_resolving(self, table):
        flow = table.open("a", "b")
        assert flow.state is FlowState.RESOLVING
        assert flow in table
        assert len(table) == 1

    def test_legal_lifecycle_path(self, env, table):
        flow = table.open("a", "b")
        table.transition(flow, FlowState.ACTIVE)
        table.transition(flow, FlowState.PAUSED)
        table.transition(flow, FlowState.REBINDING)
        table.transition(flow, FlowState.PAUSED)
        table.transition(flow, FlowState.ACTIVE)
        table.transition(flow, FlowState.BROKEN)
        table.transition(flow, FlowState.REBINDING)
        table.transition(flow, FlowState.ACTIVE)
        table.transition(flow, FlowState.CLOSED)
        assert flow.state is FlowState.CLOSED

    def test_illegal_transitions_raise(self, table):
        flow = table.open("a", "b")
        # Cannot rebind a flow that has no channel yet.
        with pytest.raises(FlowStateError):
            table.transition(flow, FlowState.REBINDING)
        table.transition(flow, FlowState.ACTIVE)
        # Repairing (BROKEN -> REBINDING) a healthy flow is illegal:
        # ACTIVE cannot jump straight back to ACTIVE either.
        with pytest.raises(FlowStateError):
            table.transition(flow, FlowState.RESOLVING)
        table.transition(flow, FlowState.CLOSED)
        # Closed is terminal.
        for state in FlowState:
            with pytest.raises(FlowStateError):
                table.transition(flow, state)

    def test_broken_only_rebinds_or_closes(self, table):
        flow = table.open("a", "b")
        table.transition(flow, FlowState.ACTIVE)
        table.transition(flow, FlowState.BROKEN)
        with pytest.raises(FlowStateError):
            table.transition(flow, FlowState.ACTIVE)
        with pytest.raises(FlowStateError):
            table.transition(flow, FlowState.PAUSED)

    def test_failed_property_mirrors_broken(self, table):
        flow = table.open("a", "b")
        table.transition(flow, FlowState.ACTIVE)
        assert not flow.failed
        table.transition(flow, FlowState.BROKEN)
        assert flow.failed

    def test_every_transition_is_emitted(self, env):
        from repro import telemetry
        from repro.telemetry.events import FLOW_TRANSITION

        with telemetry.session() as handle:
            table = FlowTable(env)
            flow = table.open("a", "b")
            table.transition(flow, FlowState.ACTIVE, reason="connected")
            table.transition(flow, FlowState.CLOSED, reason="done")
            events = handle.events.of_kind(FLOW_TRANSITION)
        assert [e.fields["new"] for e in events] == [
            "resolving", "active", "closed"
        ]
        assert events[1].fields["old"] == "resolving"
        assert events[1].fields["flow"] == flow.flow_id
        assert events[1].fields["reason"] == "connected"


class TestTablePruning:
    def test_closed_flows_are_pruned(self, table):
        flows = [table.open("a", "b") for _ in range(10)]
        for flow in flows:
            table.transition(flow, FlowState.ACTIVE)
        for flow in flows[:7]:
            table.close(flow)
        assert len(table) == 3
        assert table.closed_total == 7
        assert table.opened_total == 10
        assert all(f not in table for f in flows[:7])

    def test_endpoint_index_follows_pruning(self, table):
        flow = table.open("a", "b")
        table.transition(flow, FlowState.ACTIVE)
        assert table.flows_for("a") == [flow]
        table.close(flow)
        assert table.flows_for("a") == []
        assert table.flows_for("b") == []

    def test_close_is_idempotent(self, table):
        flow = table.open("a", "b")
        table.close(flow)
        table.close(flow)
        assert table.closed_total == 1

    def test_close_releases_paused_senders(self, env, table):
        flow = table.open("a", "b")
        table.transition(flow, FlowState.ACTIVE)
        flow.pause(env)
        table.close(flow)
        assert not flow.paused

    def test_network_connections_stays_bounded(self, env, network,
                                               three_containers, runner):
        """Satellite: connect/close churn no longer grows the list."""

        def go():
            for _ in range(20):
                conn = yield from network.connect_containers("web", "cache")
                network.close_connection(conn)
            survivor = yield from network.connect_containers("web", "db")
            return survivor

        survivor = runner(go())
        assert network.connections == [survivor]
        assert network.flows.closed_total == 20

    def test_detach_closes_flows(self, env, network, three_containers,
                                 runner):
        def go():
            conn = yield from network.connect_containers("web", "cache")
            return conn

        conn = runner(go())
        network.detach("cache")
        assert conn.state is FlowState.CLOSED
        assert network.connections == []


class TestChannelFactory:
    def test_factory_builds_policy_mechanism(self, env, network,
                                             three_containers, runner):
        def go():
            decision = yield from network.resolve("web", "db")
            channel = network.factory.build("web", "db", decision)
            return decision, channel

        decision, channel = runner(go())
        assert decision.mechanism is Mechanism.RDMA
        assert channel.mechanism is Mechanism.RDMA
        assert network.factory.built == 1

    def test_factory_applies_middlebox_and_rate_limit(self, cluster):
        from repro.core import FreeFlowNetwork, Middlebox
        from repro.core.middlebox import InspectedLane
        from repro.core.ratelimit import RateLimitedLane

        network = FreeFlowNetwork(
            cluster,
            middlebox=Middlebox(),
            tenant_rate_limits={"default": 10e9},
        )
        a = cluster.submit(ContainerSpec("fa", pinned_host="h1"))
        b = cluster.submit(ContainerSpec("fb", pinned_host="h2"))
        network.attach(a)
        network.attach(b)
        env = cluster.env

        def go():
            conn = yield from network.connect_containers("fa", "fb")
            return conn

        conn = env.run(until=env.process(go()))
        # Outermost wrap is the rate limiter, inspection inside it.
        assert isinstance(conn.channel.lane_ab, RateLimitedLane)
        assert isinstance(conn.channel.lane_ab.inner, InspectedLane)

    def test_transplant_conserves_stats_and_traffic(
        self, env, cluster, network, three_containers, runner
    ):
        """Satellite regression: rebind carries stats with the messages.

        Before the fix the transplanted message was invisible to the new
        lane's stats, so ``in_flight`` went negative after the receive
        and per-lane delivered counts under-reported.
        """

        def go():
            conn = yield from network.connect_containers("web", "cache")
            yield from conn.a.send(256, payload="precious")
            cluster.relocate("cache", "h2")
            network.orchestrator.refresh_location("cache")
            network.invalidate("cache")
            yield from network.rebind(conn)
            new_stats = conn.channel.lane_ab.stats
            assert new_stats.messages_sent == 1
            assert new_stats.messages_delivered == 1
            assert new_stats.payload_bytes == 256
            assert conn.in_flight() == 0
            message = yield from conn.b.recv()
            assert conn.in_flight() == 0
            return message.payload

        assert runner(go()) == "precious"
        assert network.factory.transplanted_messages == 1

    def test_transplant_rekeys_open_trace(self, env, cluster, network,
                                          three_containers):
        from repro import telemetry

        with telemetry.session() as handle:
            def go():
                conn = yield from network.connect_containers("web", "cache")
                yield from conn.a.send(256, payload="x")
                cluster.relocate("cache", "h2")
                network.orchestrator.refresh_location("cache")
                network.invalidate("cache")
                yield from network.rebind(conn)
                new_flow_label = conn.channel.lane_ab.flow
                message = yield from conn.b.recv()
                return new_flow_label, message

            new_flow_label, message = env.run(until=env.process(go()))
            trace = message.meta["trace"]
            # The trace finished under the adopting (rdma) lane's flow,
            # not dangling on the closed shm lane.
            assert trace.flow == new_flow_label
            assert trace.mechanism == Mechanism.RDMA.value
            assert new_flow_label in handle.tracer.flows()


class _FakeChannel:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


class TestStandaloneFlow:
    def test_direct_construction_is_active(self, env):
        from repro.core import FlowConnection

        flow = FlowConnection("a", "b", _FakeChannel(), None)
        assert flow.state is FlowState.ACTIVE
        assert flow.table is None

    def test_standalone_transitions_still_guarded(self, env):
        from repro.core import FlowConnection

        flow = FlowConnection("a", "b", _FakeChannel(), None)
        flow.pause(env)
        assert flow.state is FlowState.PAUSED
        flow.resume()
        assert flow.state is FlowState.ACTIVE
        flow.close()
        with pytest.raises(FlowStateError):
            flow._transition(FlowState.ACTIVE, "nope")


def test_registry_exports_flow_gauges():
    from repro import telemetry
    from repro.cluster import ClusterOrchestrator
    from repro.core import FreeFlowNetwork
    from repro.hardware import Fabric, Host

    env = Environment()
    with telemetry.session() as handle:
        cluster = ClusterOrchestrator(env)
        fabric = Fabric(env)
        for name in ("h1", "h2"):
            cluster.add_host(Host(env, name, fabric=fabric))
        network = FreeFlowNetwork(cluster)
        a = cluster.submit(ContainerSpec("a", pinned_host="h1"))
        b = cluster.submit(ContainerSpec("b", pinned_host="h1"))
        network.attach(a)
        network.attach(b)

        def go():
            conn = yield from network.connect_containers("a", "b")
            return conn

        conn = env.run(until=env.process(go()))
        snapshot = handle.registry.snapshot()
        assert snapshot["repro.flows.open"] == 1.0
        assert snapshot["repro.flows.active"] == 1.0
        assert snapshot["repro.flows.broken"] == 0.0
        network.close_connection(conn)
        snapshot = handle.registry.snapshot()
        assert snapshot["repro.flows.open"] == 0.0
        assert snapshot["repro.flows.closed_total"] == 1.0
        assert snapshot["repro.flows.transitions"] >= 3.0

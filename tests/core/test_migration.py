"""Behaviour tests for live migration (paper §7)."""

import pytest

from repro.cluster import ContainerSpec, ContainerStatus
from repro.core import MigrationController
from repro.errors import MigrationError
from repro.transports import Mechanism


@pytest.fixture
def controller(network):
    return MigrationController(network)


@pytest.fixture
def colocated_pair(cluster, network):
    a = cluster.submit(ContainerSpec("app", pinned_host="h1"))
    b = cluster.submit(ContainerSpec("peer", pinned_host="h1"))
    network.attach(a)
    network.attach(b)
    return a, b


def test_migration_report_fields(env, network, controller, colocated_pair,
                                 runner):
    def go():
        report = yield from controller.live_migrate(
            "peer", "h2", state_bytes=50e6
        )
        return report

    report = runner(go())
    assert report.container == "peer"
    assert report.source == "h1"
    assert report.destination == "h2"
    assert report.total_seconds > 0
    assert 0 < report.downtime_seconds < report.total_seconds
    assert report.precopy_rounds >= 1
    assert report.bytes_copied >= 50e6


def test_migration_moves_the_container(env, cluster, network, controller,
                                       colocated_pair, runner):
    def go():
        yield from controller.live_migrate("peer", "h2", state_bytes=10e6)

    runner(go())
    assert cluster.container("peer").host.name == "h2"
    assert cluster.container("peer").status is ContainerStatus.RUNNING


def test_connection_rebinds_shm_to_rdma(env, network, controller,
                                        colocated_pair, runner):
    def go():
        conn = yield from network.connect_containers("app", "peer")
        assert conn.mechanism is Mechanism.SHM
        report = yield from controller.live_migrate(
            "peer", "h2", state_bytes=10e6
        )
        return conn, report

    conn, report = runner(go())
    assert conn.mechanism is Mechanism.RDMA
    assert report.rebound_connections == 1
    assert report.mechanism_changes == [(Mechanism.SHM, Mechanism.RDMA)]


def test_traffic_survives_migration(env, network, controller,
                                    colocated_pair, runner):
    counters = {"delivered": 0}

    def go():
        conn = yield from network.connect_containers("app", "peer")
        stop = {"v": False}

        def traffic():
            while not stop["v"]:
                yield from conn.a.send(32 * 1024)
                yield from conn.b.recv()
                counters["delivered"] += 1

        env.process(traffic())
        yield env.timeout(0.002)
        yield from controller.live_migrate("peer", "h2", state_bytes=20e6)
        at_switch = counters["delivered"]
        yield env.timeout(0.002)
        stop["v"] = True
        yield env.timeout(0.01)
        return at_switch

    at_switch = runner(go())
    assert at_switch > 0
    assert counters["delivered"] > at_switch  # flowed after the move


def test_dirtier_memory_needs_more_rounds(env, network, controller,
                                          colocated_pair, runner):
    def go():
        calm = yield from controller.live_migrate(
            "peer", "h2", state_bytes=100e6, dirty_rate_bytes=10e6
        )
        busy_controller = MigrationController(
            network, downtime_target_bytes=1e6
        )
        busy = yield from busy_controller.live_migrate(
            "peer", "h1", state_bytes=100e6, dirty_rate_bytes=2e9
        )
        return calm, busy

    calm, busy = runner(go())
    assert busy.precopy_rounds >= calm.precopy_rounds
    assert busy.bytes_copied > calm.bytes_copied


def test_migrate_to_same_host_rejected(env, controller, colocated_pair,
                                       runner):
    def go():
        yield from controller.live_migrate("peer", "h1")

    with pytest.raises(MigrationError):
        runner(go())


def test_migrate_unknown_destination_rejected(env, controller,
                                              colocated_pair, runner):
    def go():
        yield from controller.live_migrate("peer", "the-moon")

    with pytest.raises(MigrationError):
        runner(go())


def test_migrate_stopped_container_rejected(env, cluster, controller,
                                            colocated_pair, runner):
    cluster.stop("peer")

    def go():
        yield from controller.live_migrate("peer", "h2")

    with pytest.raises(MigrationError):
        runner(go())


def test_downtime_far_below_total(env, network, controller, colocated_pair,
                                  runner):
    """The whole point of pre-copy: downtime << total migration time."""

    def go():
        report = yield from controller.live_migrate(
            "peer", "h2", state_bytes=500e6, dirty_rate_bytes=100e6
        )
        return report

    report = runner(go())
    assert report.downtime_seconds < report.total_seconds / 5

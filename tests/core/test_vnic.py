"""Behaviour tests for the virtual NIC: verbs ops over FreeFlow channels.

This exercises the paper's §5 flows end to end: the same application
verbs code runs over shared memory when the peer is local and over RDMA
when it is remote.
"""

import pytest

from repro.cluster import ContainerSpec
from repro.core import Opcode, QpState, WcStatus, WorkRequest
from repro.transports import Mechanism


@pytest.fixture
def endpoints(cluster, network):
    """Two connected verbs endpoints; placement set by request.param-ish
    helper functions below."""

    def build(host_a="h1", host_b="h1"):
        ca = cluster.submit(ContainerSpec("ca", pinned_host=host_a))
        cb = cluster.submit(ContainerSpec("cb", pinned_host=host_b))
        va, vb = network.attach(ca), network.attach(cb)
        pa, pb = va.alloc_pd(), vb.alloc_pd()
        qa = va.create_qp(pa, va.create_cq(), va.create_cq())
        qb = vb.create_qp(pb, vb.create_cq(), vb.create_cq())
        return (va, pa, qa), (vb, pb, qb)

    return build


def _connect(env, network, qa, qb):
    def go():
        decision = yield from network.connect(qa, qb)
        return decision

    process = env.process(go())
    return env.run(until=process)


class TestConnectionSetup:
    def test_connect_transitions_both_qps_to_rts(
        self, env, network, endpoints
    ):
        (va, pa, qa), (vb, pb, qb) = endpoints()
        decision = _connect(env, network, qa, qb)
        assert qa.state is QpState.RTS
        assert qb.state is QpState.RTS
        assert decision.mechanism is Mechanism.SHM
        assert qa.remote is qb and qb.remote is qa

    def test_interhost_pair_connects_over_rdma(
        self, env, network, endpoints
    ):
        (va, pa, qa), (vb, pb, qb) = endpoints("h1", "h2")
        decision = _connect(env, network, qa, qb)
        assert decision.mechanism is Mechanism.RDMA


class TestSendRecv:
    @pytest.mark.parametrize("hosts", [("h1", "h1"), ("h1", "h2")])
    def test_send_matches_posted_recv(self, env, network, endpoints, hosts):
        (va, pa, qa), (vb, pb, qb) = endpoints(*hosts)
        _connect(env, network, qa, qb)
        mr_b = vb.reg_mr(pb, 1 << 20)
        qb.post_recv(WorkRequest(opcode=Opcode.RECV, length=1 << 20,
                                 local_mr=mr_b, wr_id=9))

        def send():
            yield from qa.post_send(WorkRequest(
                opcode=Opcode.SEND, length=4096, payload="hello", wr_id=1,
            ))
            wc = yield from qb.recv_cq.wait()
            return wc

        process = env.process(send())
        wc = env.run(until=process)
        assert wc.ok and wc.opcode is Opcode.RECV
        assert wc.byte_len == 4096
        assert wc.payload == "hello"
        assert wc.wr_id == 9
        assert mr_b.read(0, 4096) == "hello"

    def test_send_completion_after_remote_consumes(
        self, env, network, endpoints
    ):
        (va, pa, qa), (vb, pb, qb) = endpoints()
        _connect(env, network, qa, qb)
        mr_b = vb.reg_mr(pb, 1 << 20)

        def flow():
            yield from qa.post_send(WorkRequest(
                opcode=Opcode.SEND, length=128, wr_id=5,
            ))
            # RNR: no receive is posted yet — the send cannot complete.
            yield env.timeout(0.001)
            assert qa.send_cq.poll() == []
            qb.post_recv(WorkRequest(opcode=Opcode.RECV, length=1024,
                                     local_mr=mr_b))
            wc = yield from qa.send_cq.wait()
            return wc

        process = env.process(flow())
        wc = env.run(until=process)
        assert wc.ok and wc.opcode is Opcode.SEND and wc.wr_id == 5

    def test_undersized_recv_buffer_errors_both_sides(
        self, env, network, endpoints
    ):
        (va, pa, qa), (vb, pb, qb) = endpoints()
        _connect(env, network, qa, qb)
        mr_b = vb.reg_mr(pb, 1 << 20)
        qb.post_recv(WorkRequest(opcode=Opcode.RECV, length=16,
                                 local_mr=mr_b))

        def flow():
            yield from qa.post_send(WorkRequest(
                opcode=Opcode.SEND, length=4096, wr_id=2,
            ))
            wc_send = yield from qa.send_cq.wait()
            wc_recv = yield from qb.recv_cq.wait()
            return wc_send, wc_recv

        process = env.process(flow())
        wc_send, wc_recv = env.run(until=process)
        assert wc_send.status is WcStatus.REMOTE_INVALID_REQUEST
        assert wc_recv.status is WcStatus.LOCAL_LENGTH_ERROR
        assert qa.state is QpState.ERROR

    def test_unsignaled_success_suppressed(self, env, network, endpoints):
        (va, pa, qa), (vb, pb, qb) = endpoints()
        _connect(env, network, qa, qb)
        mr_b = vb.reg_mr(pb, 1 << 20)
        qb.post_recv(WorkRequest(opcode=Opcode.RECV, length=1 << 20,
                                 local_mr=mr_b))

        def flow():
            yield from qa.post_send(WorkRequest(
                opcode=Opcode.SEND, length=64, signaled=False,
            ))
            yield from qb.recv_cq.wait()
            yield env.timeout(0.001)
            return qa.send_cq.poll()

        process = env.process(flow())
        assert env.run(until=process) == []


class TestOneSidedOps:
    @pytest.mark.parametrize("hosts", [("h1", "h1"), ("h1", "h2")])
    def test_write_lands_in_remote_mr(self, env, network, endpoints, hosts):
        (va, pa, qa), (vb, pb, qb) = endpoints(*hosts)
        _connect(env, network, qa, qb)
        mr_b = vb.reg_mr(pb, 1 << 20)

        def flow():
            yield from qa.post_send(WorkRequest(
                opcode=Opcode.WRITE, length=8192, payload=b"block",
                remote_key=mr_b.rkey, remote_offset=100, wr_id=3,
            ))
            wc = yield from qa.send_cq.wait()
            return wc

        process = env.process(flow())
        wc = env.run(until=process)
        assert wc.ok and wc.opcode is Opcode.WRITE
        assert mr_b.read(100, 8192) == b"block"
        # One-sided: the receiver got no completion.
        assert qb.recv_cq.poll() == []

    def test_write_with_bad_rkey_errors(self, env, network, endpoints):
        (va, pa, qa), (vb, pb, qb) = endpoints()
        _connect(env, network, qa, qb)

        def flow():
            yield from qa.post_send(WorkRequest(
                opcode=Opcode.WRITE, length=64, remote_key=0xDEAD,
                wr_id=4,
            ))
            wc = yield from qa.send_cq.wait()
            return wc

        process = env.process(flow())
        wc = env.run(until=process)
        assert wc.status is WcStatus.REMOTE_ACCESS_ERROR
        assert qa.state is QpState.ERROR

    def test_write_out_of_bounds_errors(self, env, network, endpoints):
        (va, pa, qa), (vb, pb, qb) = endpoints()
        _connect(env, network, qa, qb)
        mr_b = vb.reg_mr(pb, 1000)

        def flow():
            yield from qa.post_send(WorkRequest(
                opcode=Opcode.WRITE, length=5000, remote_key=mr_b.rkey,
            ))
            wc = yield from qa.send_cq.wait()
            return wc

        process = env.process(flow())
        assert env.run(until=process).status is WcStatus.REMOTE_ACCESS_ERROR

    def test_write_with_imm_consumes_a_recv(self, env, network, endpoints):
        (va, pa, qa), (vb, pb, qb) = endpoints()
        _connect(env, network, qa, qb)
        mr_b = vb.reg_mr(pb, 1 << 20)
        qb.post_recv(WorkRequest(opcode=Opcode.RECV, length=0,
                                 local_mr=mr_b, wr_id=11))

        def flow():
            yield from qa.post_send(WorkRequest(
                opcode=Opcode.WRITE_WITH_IMM, length=2048, payload="x",
                remote_key=mr_b.rkey, imm_data=777,
            ))
            wc = yield from qb.recv_cq.wait()
            return wc

        process = env.process(flow())
        wc = env.run(until=process)
        assert wc.ok and wc.imm_data == 777 and wc.byte_len == 2048

    @pytest.mark.parametrize("hosts", [("h1", "h1"), ("h1", "h2")])
    def test_read_fetches_remote_data(self, env, network, endpoints, hosts):
        (va, pa, qa), (vb, pb, qb) = endpoints(*hosts)
        _connect(env, network, qa, qb)
        mr_a = va.reg_mr(pa, 1 << 20)
        mr_b = vb.reg_mr(pb, 1 << 20)
        mr_b.write(0, 4096, "remote-data")

        def flow():
            yield from qa.post_send(WorkRequest(
                opcode=Opcode.READ, length=4096, local_mr=mr_a,
                remote_key=mr_b.rkey, remote_offset=0, wr_id=6,
            ))
            wc = yield from qa.send_cq.wait()
            return wc

        process = env.process(flow())
        wc = env.run(until=process)
        assert wc.ok and wc.opcode is Opcode.READ
        assert wc.byte_len == 4096
        assert wc.payload == "remote-data"
        # DMA'd into the local MR as a real NIC would.
        assert mr_a.read(0, 4096) == "remote-data"

    def test_read_with_bad_rkey_errors(self, env, network, endpoints):
        (va, pa, qa), (vb, pb, qb) = endpoints()
        _connect(env, network, qa, qb)
        mr_a = va.reg_mr(pa, 1 << 20)

        def flow():
            yield from qa.post_send(WorkRequest(
                opcode=Opcode.READ, length=64, local_mr=mr_a,
                remote_key=0xBEEF,
            ))
            wc = yield from qa.send_cq.wait()
            return wc

        process = env.process(flow())
        assert env.run(until=process).status is WcStatus.REMOTE_ACCESS_ERROR


class TestOrdering:
    def test_send_queue_is_fifo(self, env, network, endpoints):
        (va, pa, qa), (vb, pb, qb) = endpoints()
        _connect(env, network, qa, qb)
        mr_b = vb.reg_mr(pb, 1 << 20)
        for _ in range(10):
            qb.post_recv(WorkRequest(opcode=Opcode.RECV, length=1 << 20,
                                     local_mr=mr_b))
        received = []

        def flow():
            for i in range(10):
                yield from qa.post_send(WorkRequest(
                    opcode=Opcode.SEND, length=1024, payload=i,
                ))
            for _ in range(10):
                wc = yield from qb.recv_cq.wait()
                received.append(wc.payload)

        process = env.process(flow())
        env.run(until=process)
        assert received == list(range(10))

"""Streaming socket path: ordering, FIN semantics, credit backpressure,
completion batching, and chaos-repair conservation.

These tests pin the TSoR-style protocol details that the generic
byte-stream contract in ``test_sockets.py`` (which runs both data
paths) cannot see: ring/zero-copy interleaving, FIN ordering behind
staged bytes, the credit window actually exhausting and recovering,
``wait_batch`` coalescing showing up in telemetry, and the flow
table's BROKEN → REBINDING transplant conserving every in-ring byte.
"""

import pytest

from repro import telemetry
from repro.chaos import NicInjector
from repro.cluster import ContainerSpec
from repro.core import FlowState, SocketLayer
from repro.core.sockets import (
    RING_BYTES,
    ZERO_COPY_THRESHOLD_BYTES,
)
from repro.transports import Mechanism


@pytest.fixture
def layer(network):
    return SocketLayer(network, streaming=True)


@pytest.fixture
def remote_pair(cluster, network):
    """client on h1, server on h2: inter-host, so the RDMA path."""
    a = cluster.submit(ContainerSpec("client", pinned_host="h1"))
    b = cluster.submit(ContainerSpec("server", pinned_host="h2"))
    network.attach(a)
    network.attach(b)
    return a, b


def test_interleaved_small_and_large_sends_preserve_order(
    env, layer, remote_pair, runner
):
    """Ring-path and zero-copy sends interleave freely; the FIFO send
    lock plus the flusher drain in ``_send_large`` must keep the stream
    in exact send order, with each message's payload marker intact."""
    client_c, server_c = remote_pair
    sizes = [
        64,                             # ring
        ZERO_COPY_THRESHOLD_BYTES,      # smallest zero-copy send
        200,                            # ring
        64 * 1024,                      # zero-copy
        ZERO_COPY_THRESHOLD_BYTES - 1,  # largest ring send
        96,                             # ring
        32 * 1024,                      # zero-copy
        48,                             # ring
    ]
    listener = layer.listen(server_c, 7100)
    got = []

    def server():
        sock = yield from listener.accept()
        for size in sizes:
            n, payload = yield from sock.recv_exactly(size)
            got.append((n, payload))

    def go():
        server_proc = env.process(server())
        sock = layer.socket(client_c)
        yield from sock.connect(server_c.ip, 7100)
        for i, size in enumerate(sizes):
            yield from sock.send(size, payload=f"msg-{i}")
        yield from sock.shutdown()
        yield server_proc

    runner(go())
    assert got == [(size, f"msg-{i}") for i, size in enumerate(sizes)]


def test_shutdown_with_bytes_still_in_ring_orders_fin_after_data(
    env, layer, remote_pair, runner
):
    """shutdown() called while bytes sit staged / in the ring: the FIN
    must wait out the flusher, so the peer reads every byte and only
    then sees EOF."""
    client_c, server_c = remote_pair
    listener = layer.listen(server_c, 7101)
    result = {"bytes": 0, "eof": False, "bytes_at_eof": None}

    def server():
        sock = yield from listener.accept()
        while True:
            n, _ = yield from sock.recv()
            if n == 0:
                result["eof"] = True
                result["bytes_at_eof"] = result["bytes"]
                return
            result["bytes"] += n

    def go():
        server_proc = env.process(server())
        sock = layer.socket(client_c)
        yield from sock.connect(server_c.ip, 7101)
        for _ in range(32):
            yield from sock.send(512)
        # The flusher is paced (RING_WRITE_PIPELINE), so right after the
        # last send() returns there are still unflushed/unacked bytes —
        # exactly the situation FIN ordering is about.
        assert sock._staged_bytes > 0 or sock._tx_ring.used > 0
        yield from sock.shutdown()
        yield server_proc

    runner(go())
    assert result["eof"]
    assert result["bytes_at_eof"] == 32 * 512


def test_credit_exhaustion_blocks_sender_until_consumer_drains(
    env, layer, remote_pair
):
    """A non-consuming receiver exhausts the RING_BYTES credit window:
    the sender parks on the credit tank (no retries, no drops) and a
    draining consumer releases it for full delivery."""
    client_c, server_c = remote_pair
    listener = layer.listen(server_c, 7102)
    socks = {}

    def acceptor():
        socks["server"] = yield from listener.accept()

    env.process(acceptor())

    chunk = 4096
    chunks = RING_BYTES // chunk + 16   # 64 KiB more than the window
    progress = {"sent": 0}

    def client():
        sock = layer.socket(client_c)
        socks["client"] = sock
        yield from sock.connect(server_c.ip, 7102)
        for _ in range(chunks):
            yield from sock.send(chunk)
            progress["sent"] += 1

    sender = env.process(client())
    env.run(until=env.now + 0.05)

    # Exhausted: the sender is parked mid-stream with the tank empty.
    assert sender.is_alive
    assert 0 < progress["sent"] < chunks
    assert socks["client"]._tx_credits.level < chunk
    assert socks["server"]._rx_ring.used > 0

    # Recovery: a consumer drains the ring, credits flow back, and the
    # blocked sender finishes without losing a byte.
    drained = {"bytes": 0}

    def consumer():
        sock = socks["server"]
        while drained["bytes"] < chunks * chunk:
            n, _ = yield from sock.recv()
            drained["bytes"] += n

    done = env.process(consumer())
    env.run(until=done)
    env.run(until=sender)
    assert progress["sent"] == chunks
    assert drained["bytes"] == chunks * chunk
    # Steady state restored: everything advertised back except what the
    # receiver has consumed but not yet re-advertised (sub-threshold).
    client_sock = socks["client"]
    assert client_sock._tx_credits.level == RING_BYTES - client_sock._tx_ring.used


def test_completion_batching_shows_up_in_telemetry(
    env, layer, remote_pair, runner
):
    """A burst of small sends must coalesce: fewer ring WRITEs than
    sends, and the ``repro.verbs.cq.batch`` histogram records multi-
    completion drains on the receive side."""
    client_c, server_c = remote_pair
    sends = 128
    size = 8192  # long enough bounce copies that completions pile up

    with telemetry.session() as handle:
        listener = layer.listen(server_c, 7103)

        def server():
            sock = yield from listener.accept()
            yield from sock.recv_exactly(sends * size)

        def go():
            server_proc = env.process(server())
            sock = layer.socket(client_c)
            yield from sock.connect(server_c.ip, 7103)
            for _ in range(sends):
                yield from sock.send(size)
            yield server_proc

        runner(go())
        snapshot = handle.registry.snapshot()

    assert snapshot["repro.socket.ring_appends"] == sends
    assert snapshot["repro.socket.ring_writes"] < sends  # coalesced
    batch = snapshot["repro.verbs.cq.batch"]
    assert batch["count"] > 0
    assert batch["max"] > 1.0  # at least one genuinely batched drain


def test_broken_flow_repair_conserves_streamed_bytes(
    env, network, layer, remote_pair, runner
):
    """nic-loss-midflow, socket edition: the NIC's bypass dies with
    bytes staged and in the ring, the flow goes BROKEN → REBINDING →
    ACTIVE on the TCP fallback, and the transplant conserves the whole
    stream — every byte lands, in order, followed by the FIN."""
    client_c, server_c = remote_pair
    listener = layer.listen(server_c, 7104)
    socks = {}
    result = {"bytes": 0, "eof": False}
    messages = 64
    size = 1024

    def server():
        sock = yield from listener.accept()
        socks["server"] = sock
        while True:
            n, _ = yield from sock.recv()
            if n == 0:
                result["eof"] = True
                return
            result["bytes"] += n

    def go():
        server_proc = env.process(server())
        sock = layer.socket(client_c)
        yield from sock.connect(server_c.ip, 7104)
        assert sock.mechanism is Mechanism.RDMA
        for _ in range(messages):
            yield from sock.send(size)
        # Mid-flow: the paced flusher still has bytes staged or
        # un-acked in the ring when the NIC dies.
        assert sock._staged_bytes > 0 or sock._tx_ring.used > 0

        flow = network.flows.flows_for("client")[0]
        injector = NicInjector(network)
        injector.lose_bypass("h2")
        network.invalidate("client")    # drop the cached RDMA decision
        network.flows.transition(flow, FlowState.BROKEN,
                                 reason="nic-loss-midflow")
        decision = yield from network.repair_connection(flow)
        assert decision.mechanism is Mechanism.TCP

        for _ in range(messages):
            yield from sock.send(size)
        yield from sock.shutdown()
        yield server_proc
        return flow

    flow = runner(go())
    assert result["eof"]
    assert result["bytes"] == 2 * messages * size   # nothing lost, no dup
    assert flow.state is FlowState.ACTIVE
    assert flow.mechanism is Mechanism.TCP
    assert flow.generation == 2
    # Ring invariant after drain: the receive ring is empty and agrees
    # with the (empty) reassembly buffer.
    server_sock = socks["server"]
    ring_tagged = sum(n for n, _p, from_ring in server_sock._rx_buffer
                      if from_ring)
    assert server_sock._rx_ring.used == ring_tagged == 0

"""Unit tests for the FreeFlow network orchestrator."""

import pytest

from repro.cluster import ContainerSpec
from repro.core import NetworkOrchestrator
from repro.errors import UnknownContainer
from repro.transports import Mechanism


@pytest.fixture
def orchestrator(cluster):
    return NetworkOrchestrator(cluster)


@pytest.fixture
def pair(cluster, orchestrator):
    a = cluster.submit(ContainerSpec("a", pinned_host="h1"))
    b = cluster.submit(ContainerSpec("b", pinned_host="h1"))
    orchestrator.register(a)
    orchestrator.register(b)
    return a, b


def test_register_assigns_tenant_scoped_ip(cluster, orchestrator):
    blue = cluster.submit(ContainerSpec("blue1", tenant="blue"))
    red = cluster.submit(ContainerSpec("red1", tenant="red"))
    record_blue = orchestrator.register(blue)
    record_red = orchestrator.register(red)
    assert blue.ip == record_blue.ip
    assert orchestrator.subnets.tenant_of(record_blue.ip) == "blue"
    assert orchestrator.subnets.tenant_of(record_red.ip) == "red"


def test_register_twice_rejected(cluster, orchestrator, pair):
    with pytest.raises(ValueError):
        orchestrator.register(pair[0])


def test_manual_ip_honoured(cluster, orchestrator):
    c = cluster.submit(ContainerSpec("pinned", requested_ip="10.32.0.100"))
    record = orchestrator.register(c)
    assert record.ip == "10.32.0.100"


def test_lookup_by_ip(cluster, orchestrator, pair):
    a, __ = pair
    assert orchestrator.lookup_by_ip(a.ip).container is a
    with pytest.raises(UnknownContainer):
        orchestrator.lookup_by_ip("1.2.3.4")


def test_deregister_releases_ip(cluster, orchestrator, pair):
    a, __ = pair
    ip = a.ip
    orchestrator.deregister("a")
    assert a.ip is None
    with pytest.raises(UnknownContainer):
        orchestrator.lookup("a")
    # The IP can be re-allocated.
    c = cluster.submit(ContainerSpec("c", requested_ip=ip))
    assert orchestrator.register(c).ip == ip


def test_deregister_unknown_is_noop(orchestrator):
    orchestrator.deregister("ghost")


def test_query_location_costs_a_round_trip(env, orchestrator, pair, runner):
    def query():
        started = env.now
        record = yield from orchestrator.query_location("a")
        return record, env.now - started

    record, elapsed = runner(query())
    assert record.container.name == "a"
    assert elapsed == pytest.approx(orchestrator.query_latency_s)
    assert orchestrator.queries_served == 1


def test_query_mechanism_decides_from_global_state(
    env, cluster, orchestrator, pair, runner
):
    def query():
        decision = yield from orchestrator.query_mechanism("a", "b")
        return decision

    decision = runner(query())
    assert decision.mechanism is Mechanism.SHM  # both pinned to h1


def test_decide_synchronous(orchestrator, pair):
    assert orchestrator.decide("a", "b").mechanism is Mechanism.SHM


def test_nic_capabilities(cluster, orchestrator):
    caps = orchestrator.nic_capabilities("h1")
    assert caps["rdma"] and caps["dpdk"]
    assert caps["link_rate_bps"] == pytest.approx(40e9)
    assert "CX3" in caps["model"]


def test_refresh_location_publishes(cluster, orchestrator, pair):
    a, __ = pair
    watch = orchestrator.watch_container("a")
    cluster.relocate("a", "h2")
    orchestrator.refresh_location("a")
    events = watch.pending()
    assert events
    assert events[-1].value["host"] == "h2"
    assert events[-1].value["generation"] == a.generation


def test_locate_resolves_physical_host(cluster, orchestrator, pair):
    assert orchestrator.locate("a").name == "h1"


def test_unknown_container_raises(orchestrator):
    with pytest.raises(UnknownContainer):
        orchestrator.lookup("ghost")
    with pytest.raises(UnknownContainer):
        orchestrator.decide("ghost", "ghost2")

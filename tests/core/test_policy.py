"""Unit tests for the mechanism-selection policy (paper Table 1)."""

import pytest

from repro.cluster import ContainerSpec
from repro.cluster.container import Container
from repro.core import MechanismPolicy, PolicyConfig
from repro.hardware import Host, NO_RDMA_TESTBED, VirtualMachine, VmSpec
from repro.sim import Environment
from repro.transports import Mechanism


def _containers(env, *, same_host=True, rdma=True, tenants=("t", "t"),
                vms=(None, None)):
    spec = None if rdma else NO_RDMA_TESTBED
    h1 = Host(env, "h1", spec=spec)
    h2 = h1 if same_host else Host(env, "h2", spec=spec)
    vm_objects = []
    for vm_name, host in zip(vms, (h1, h2)):
        if vm_name is None:
            vm_objects.append(None)
        else:
            existing = {v.name: v for v in host.vms}
            vm_objects.append(
                existing.get(vm_name) or VirtualMachine(host, vm_name)
            )
    a = Container(ContainerSpec("a", tenant=tenants[0]), h1, vm_objects[0])
    b = Container(ContainerSpec("b", tenant=tenants[1]), h2, vm_objects[1])
    return a, b


@pytest.fixture
def policy():
    return MechanismPolicy()


class TestPaperTableOne:
    """The constraint matrix from the paper's (commented) Table 1."""

    def test_case_a_same_host_no_constraint(self, env, policy):
        a, b = _containers(env, same_host=True)
        assert policy.decide(a, b).mechanism is Mechanism.SHM

    def test_case_b_two_hosts_no_constraint(self, env, policy):
        a, b = _containers(env, same_host=False)
        assert policy.decide(a, b).mechanism is Mechanism.RDMA

    def test_case_c_same_vm(self, env, policy):
        a, b = _containers(env, same_host=True, vms=("vm0", "vm0"))
        assert policy.decide(a, b).mechanism is Mechanism.SHM

    def test_case_d_vms_on_two_hosts_sriov(self, env, policy):
        a, b = _containers(env, same_host=False, vms=("vm0", "vm1"))
        assert policy.decide(a, b).mechanism is Mechanism.RDMA

    def test_without_trust_everything_is_tcp(self, env, policy):
        for same_host in (True, False):
            a, b = _containers(env, same_host=same_host,
                               tenants=("blue", "red"))
            decision = policy.decide(a, b)
            assert decision.mechanism is Mechanism.TCP
            assert not decision.trusted

    def test_without_rdma_same_host_still_shm(self, env, policy):
        a, b = _containers(env, same_host=True, rdma=False)
        assert policy.decide(a, b).mechanism is Mechanism.SHM

    def test_without_rdma_two_hosts_tcp(self, env, policy):
        a, b = _containers(env, same_host=False, rdma=False)
        # NO_RDMA_TESTBED also disables DPDK, so the fallback is TCP.
        assert policy.decide(a, b).mechanism is Mechanism.TCP


class TestPolicyKnobs:
    def test_shm_disabled_colocated_uses_rdma_loopback(self, env):
        policy = MechanismPolicy(PolicyConfig(allow_shm=False))
        a, b = _containers(env, same_host=True)
        assert policy.decide(a, b).mechanism is Mechanism.RDMA

    def test_rdma_disabled_falls_to_dpdk(self, env):
        policy = MechanismPolicy(PolicyConfig(allow_rdma=False))
        a, b = _containers(env, same_host=False)
        assert policy.decide(a, b).mechanism is Mechanism.DPDK

    def test_dpdk_fallback_can_be_disabled(self, env):
        policy = MechanismPolicy(
            PolicyConfig(allow_rdma=False, prefer_dpdk_fallback=False)
        )
        a, b = _containers(env, same_host=False)
        assert policy.decide(a, b).mechanism is Mechanism.TCP

    def test_trust_requirement_can_be_waived(self, env):
        policy = MechanismPolicy(PolicyConfig(require_trust=False))
        a, b = _containers(env, same_host=True, tenants=("blue", "red"))
        assert policy.decide(a, b).mechanism is Mechanism.SHM

    def test_different_vms_one_host_default_no_shm(self, env):
        policy = MechanismPolicy()
        a, b = _containers(env, same_host=True, vms=("vm0", "vm1"))
        decision = policy.decide(a, b)
        assert decision.mechanism is not Mechanism.SHM
        assert decision.colocated

    def test_netvm_style_shm_across_vms(self, env):
        policy = MechanismPolicy(PolicyConfig(shm_across_vms=True))
        a, b = _containers(env, same_host=True, vms=("vm0", "vm1"))
        assert policy.decide(a, b).mechanism is Mechanism.SHM

    def test_vm_without_sriov_cannot_bypass(self, env):
        h1 = Host(env, "h1")
        h2 = Host(env, "h2")
        vm1 = VirtualMachine(h1, "vm0", VmSpec(sriov=False))
        vm2 = VirtualMachine(h2, "vm1", VmSpec(sriov=False))
        a = Container(ContainerSpec("a"), h1, vm1)
        b = Container(ContainerSpec("b"), h2, vm2)
        assert MechanismPolicy().decide(a, b).mechanism is Mechanism.TCP

    def test_decision_reason_is_populated(self, env):
        a, b = _containers(env)
        decision = MechanismPolicy().decide(a, b)
        assert decision.reason
        assert decision.colocated and decision.trusted


class TestDegradedHost:
    def test_degraded_host_forces_tcp_even_colocated(self, env, policy):
        a, b = _containers(env, same_host=True)
        caps = {"h1": {"degraded": True}}
        decision = policy.decide(a, b, capabilities=caps)
        assert decision.mechanism is Mechanism.TCP
        assert "degraded" in decision.reason

    def test_degraded_peer_host_forces_tcp(self, env, policy):
        a, b = _containers(env, same_host=False)
        caps = {"h2": {"degraded": True}}
        assert policy.decide(a, b,
                             capabilities=caps).mechanism is Mechanism.TCP

    def test_degraded_false_changes_nothing(self, env, policy):
        a, b = _containers(env, same_host=False)
        caps = {"h1": {"degraded": False}}
        assert policy.decide(a, b,
                             capabilities=caps).mechanism is Mechanism.RDMA

    def test_degraded_loses_to_nothing_but_trust(self, env, policy):
        a, b = _containers(env, same_host=False, tenants=("blue", "red"))
        caps = {"h1": {"degraded": True}}
        decision = policy.decide(a, b, capabilities=caps)
        assert decision.mechanism is Mechanism.TCP
        assert "degraded" not in decision.reason  # trust reason wins

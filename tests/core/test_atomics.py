"""Tests for RDMA atomics (ATOMIC_CAS / ATOMIC_FADD) over FreeFlow.

One-sided atomics are the backbone of RDMA-native systems (FaRM-style
KV stores, distributed locks) — exactly the workloads the paper's intro
motivates — so the vNIC implements them over every mechanism.
"""

import pytest

from repro.cluster import ContainerSpec
from repro.core import Opcode, QpState, WcStatus, WorkRequest
from repro.errors import VerbsError


@pytest.fixture
def connected(cluster, network, request):
    """Two connected verbs endpoints (intra-host by default)."""

    def build(host_b="h1"):
        a = cluster.submit(ContainerSpec("a", pinned_host="h1"))
        b = cluster.submit(ContainerSpec("b", pinned_host=host_b))
        va, vb = network.attach(a), network.attach(b)
        pa, pb = va.alloc_pd(), vb.alloc_pd()
        qa = va.create_qp(pa, va.create_cq(), va.create_cq())
        qb = vb.create_qp(pb, vb.create_cq(), vb.create_cq())
        mr_a = va.reg_mr(pa, 4096)
        mr_b = vb.reg_mr(pb, 4096)
        env = cluster.env

        def go():
            yield from network.connect(qa, qb)

        env.run(until=env.process(go()))
        return qa, qb, mr_a, mr_b

    return build


def _post_and_wait(env, qp, wr):
    def go():
        yield from qp.post_send(wr)
        wc = yield from qp.send_cq.wait()
        return wc

    return env.run(until=env.process(go()))


class TestValidation:
    def test_atomics_need_remote_key(self):
        with pytest.raises(VerbsError):
            WorkRequest(opcode=Opcode.ATOMIC_CAS, length=8)

    def test_atomics_need_8_byte_length(self):
        with pytest.raises(VerbsError):
            WorkRequest(opcode=Opcode.ATOMIC_FADD, length=16, remote_key=1)


class TestFetchAdd:
    @pytest.mark.parametrize("host_b", ["h1", "h2"])
    def test_fadd_returns_old_and_adds(self, env, connected, host_b):
        qa, qb, mr_a, mr_b = connected(host_b)
        mr_b.atomic_set(0, 100)
        wc = _post_and_wait(env, qa, WorkRequest(
            opcode=Opcode.ATOMIC_FADD, length=8, remote_key=mr_b.rkey,
            remote_offset=0, compare_add=5, local_mr=mr_a, wr_id=1,
        ))
        assert wc.ok and wc.opcode is Opcode.ATOMIC_FADD
        assert wc.payload == 100          # the old value
        assert mr_b.atomic_value(0) == 105
        assert mr_a.atomic_value(0) == 100  # old value landed locally

    def test_fadd_on_untouched_cell_starts_at_zero(self, env, connected):
        qa, qb, mr_a, mr_b = connected()
        wc = _post_and_wait(env, qa, WorkRequest(
            opcode=Opcode.ATOMIC_FADD, length=8, remote_key=mr_b.rkey,
            compare_add=7,
        ))
        assert wc.payload == 0
        assert mr_b.atomic_value(0) == 7

    def test_fadd_sequence_accumulates(self, env, connected):
        qa, qb, mr_a, mr_b = connected()
        for expected_old in (0, 1, 2, 3):
            wc = _post_and_wait(env, qa, WorkRequest(
                opcode=Opcode.ATOMIC_FADD, length=8, remote_key=mr_b.rkey,
                compare_add=1,
            ))
            assert wc.payload == expected_old
        assert mr_b.atomic_value(0) == 4


class TestCompareAndSwap:
    def test_cas_succeeds_on_match(self, env, connected):
        qa, qb, mr_a, mr_b = connected()
        mr_b.atomic_set(8, 42)
        wc = _post_and_wait(env, qa, WorkRequest(
            opcode=Opcode.ATOMIC_CAS, length=8, remote_key=mr_b.rkey,
            remote_offset=8, compare_add=42, swap=99,
        ))
        assert wc.ok and wc.payload == 42
        assert mr_b.atomic_value(8) == 99

    def test_cas_no_op_on_mismatch(self, env, connected):
        qa, qb, mr_a, mr_b = connected()
        mr_b.atomic_set(8, 42)
        wc = _post_and_wait(env, qa, WorkRequest(
            opcode=Opcode.ATOMIC_CAS, length=8, remote_key=mr_b.rkey,
            remote_offset=8, compare_add=41, swap=99,
        ))
        assert wc.ok and wc.payload == 42   # old value reported
        assert mr_b.atomic_value(8) == 42   # but no swap happened

    def test_cas_as_distributed_lock(self, env, connected):
        """Two clients race for a lock cell: exactly one wins."""
        qa, qb, mr_a, mr_b = connected()
        outcomes = []

        def contender(tag):
            yield from qa.post_send(WorkRequest(
                opcode=Opcode.ATOMIC_CAS, length=8, remote_key=mr_b.rkey,
                remote_offset=16, compare_add=0, swap=tag, wr_id=tag,
            ))

        def collect():
            for _ in range(2):
                wc = yield from qa.send_cq.wait()
                outcomes.append((wc.wr_id, wc.payload))

        env.process(contender(1))
        env.process(contender(2))
        done = env.process(collect())
        env.run(until=done)
        winners = [wr_id for wr_id, old in outcomes if old == 0]
        assert len(winners) == 1
        assert mr_b.atomic_value(16) == winners[0]


class TestAtomicErrors:
    def test_bad_rkey_errors_and_kills_qp(self, env, connected):
        qa, qb, mr_a, mr_b = connected()
        wc = _post_and_wait(env, qa, WorkRequest(
            opcode=Opcode.ATOMIC_FADD, length=8, remote_key=0xBAD,
            compare_add=1,
        ))
        assert wc.status is WcStatus.REMOTE_ACCESS_ERROR
        assert qa.state is QpState.ERROR

    def test_out_of_bounds_offset_errors(self, env, connected):
        qa, qb, mr_a, mr_b = connected()
        wc = _post_and_wait(env, qa, WorkRequest(
            opcode=Opcode.ATOMIC_CAS, length=8, remote_key=mr_b.rkey,
            remote_offset=4095, compare_add=0, swap=1,
        ))
        assert wc.status is WcStatus.REMOTE_ACCESS_ERROR

    def test_non_integer_cell_errors(self, env, connected):
        qa, qb, mr_a, mr_b = connected()
        mr_b.write(24, 8, "not-a-number")
        wc = _post_and_wait(env, qa, WorkRequest(
            opcode=Opcode.ATOMIC_FADD, length=8, remote_key=mr_b.rkey,
            remote_offset=24, compare_add=1,
        ))
        assert wc.status is WcStatus.REMOTE_ACCESS_ERROR

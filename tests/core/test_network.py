"""Unit + behaviour tests for FreeFlowNetwork assembly and caching."""

import pytest

from repro.cluster import ContainerSpec
from repro.core import FreeFlowNetwork, MechanismPolicy, PolicyConfig
from repro.errors import OrchestrationError
from repro.transports import Mechanism


class TestAttach:
    def test_attach_assigns_ip_and_vnic(self, cluster, network):
        c = cluster.submit(ContainerSpec("c"))
        vnic = network.attach(c)
        assert c.ip is not None
        assert network.vnic("c") is vnic

    def test_double_attach_rejected(self, cluster, network, three_containers):
        with pytest.raises(OrchestrationError):
            network.attach(three_containers[0])

    def test_detach_releases_everything(self, cluster, network,
                                        three_containers):
        web = three_containers[0]
        network.detach("web")
        assert web.ip is None
        with pytest.raises(OrchestrationError):
            network.vnic("web")

    def test_vnic_unknown_container(self, network):
        with pytest.raises(OrchestrationError):
            network.vnic("ghost")

    def test_agent_per_host_is_cached(self, network, host_pair):
        h1, __ = host_pair
        assert network.agent_for(h1) is network.agent_for(h1)

    def test_policy_and_config_mutually_exclusive(self, cluster):
        with pytest.raises(ValueError):
            FreeFlowNetwork(
                cluster,
                policy=MechanismPolicy(),
                policy_config=PolicyConfig(),
            )


class TestConnectContainers:
    def test_intra_host_pair_gets_shm(self, env, network, three_containers,
                                      runner):
        def go():
            conn = yield from network.connect_containers("web", "cache")
            return conn

        conn = runner(go())
        assert conn.mechanism is Mechanism.SHM
        assert conn in network.connections

    def test_inter_host_pair_gets_rdma(self, env, network, three_containers,
                                       runner):
        def go():
            conn = yield from network.connect_containers("web", "db")
            return conn

        assert runner(go()).mechanism is Mechanism.RDMA

    def test_connection_ends_work(self, env, network, three_containers,
                                  runner):
        def go():
            conn = yield from network.connect_containers("web", "db")
            yield from conn.a.send(1024, payload="x")
            message = yield from conn.b.recv()
            return message.payload

        assert runner(go()) == "x"

    def test_in_flight_counter(self, env, network, three_containers, runner):
        def go():
            conn = yield from network.connect_containers("web", "cache")
            assert conn.in_flight() == 0
            yield from conn.a.send(128)
            # ShmLane delivers within send, so in-flight is 0 again.
            return conn.in_flight()

        assert runner(go()) == 0


class TestResolveCaching:
    def test_cache_hit_avoids_second_query(self, env, network,
                                           three_containers, runner):
        def go():
            yield from network.resolve("web", "cache")
            yield from network.resolve("web", "cache")

        runner(go())
        assert network.cache_misses == 1
        assert network.cache_hits == 1
        assert network.orchestrator.queries_served == 1

    def test_cache_ttl_zero_always_queries(self, cluster, three_containers):
        network = FreeFlowNetwork(cluster, cache_ttl_s=0)
        for c in three_containers:
            pass  # containers already attached to the other network
        # Build a fresh pair for this network instance.
        a = cluster.submit(ContainerSpec("a2", pinned_host="h1"))
        b = cluster.submit(ContainerSpec("b2", pinned_host="h1"))
        network.attach(a)
        network.attach(b)
        env = cluster.env

        def go():
            yield from network.resolve("a2", "b2")
            yield from network.resolve("a2", "b2")

        process = env.process(go())
        env.run(until=process)
        assert network.cache_hits == 0
        assert network.orchestrator.queries_served == 2

    def test_cache_expires_after_ttl(self, cluster, env, three_containers,
                                     network):
        network.cache_ttl_s = 0.01

        def go():
            yield from network.resolve("web", "cache")
            yield env.timeout(0.02)
            yield from network.resolve("web", "cache")

        process = env.process(go())
        env.run(until=process)
        assert network.cache_misses == 2

    def test_invalidate_drops_entries(self, env, network, three_containers,
                                      runner):
        def go():
            yield from network.resolve("web", "cache")

        runner(go())
        network.invalidate("cache")

        runner(go())
        assert network.cache_misses == 2

    def test_resolve_costs_query_latency(self, env, network,
                                         three_containers, runner):
        def go():
            started = env.now
            yield from network.resolve("web", "db")
            return env.now - started

        assert runner(go()) == pytest.approx(
            network.orchestrator.query_latency_s
        )


class TestRebind:
    def test_rebind_changes_mechanism_after_move(
        self, env, cluster, network, three_containers, runner
    ):
        def go():
            conn = yield from network.connect_containers("web", "cache")
            assert conn.mechanism is Mechanism.SHM
            cluster.relocate("cache", "h2")
            network.orchestrator.refresh_location("cache")
            network.invalidate("cache")
            yield from network.rebind(conn)
            return conn

        conn = runner(go())
        assert conn.mechanism is Mechanism.RDMA
        assert conn.generation == 2

    def test_rebind_transplants_unconsumed_messages(
        self, env, cluster, network, three_containers, runner
    ):
        def go():
            conn = yield from network.connect_containers("web", "cache")
            yield from conn.a.send(256, payload="precious")
            # Delivered but not consumed; now move the endpoint.
            cluster.relocate("cache", "h2")
            network.orchestrator.refresh_location("cache")
            network.invalidate("cache")
            yield from network.rebind(conn)
            message = yield from conn.b.recv()
            return message.payload

        assert runner(go()) == "precious"

    def test_pause_gates_senders(self, env, network, three_containers):
        sent = []

        def go():
            conn = yield from network.connect_containers("web", "cache")
            conn.pause(env)

            def sender():
                yield from conn.a.send(64)
                sent.append(env.now)

            env.process(sender())
            yield env.timeout(0.01)
            assert sent == []
            conn.resume()
            yield env.timeout(0.01)
            assert len(sent) == 1

        process = env.process(go())
        env.run(until=process)


class TestVmAwareChannels:
    def test_cross_vm_shm_uses_netvm_channel(self, env, cluster):
        from repro.baselines import NetVmChannel
        from repro.core import FreeFlowNetwork, PolicyConfig
        from repro.hardware import VirtualMachine

        h1 = cluster.host("h1")
        vm_a = VirtualMachine(h1, "vm-a")
        vm_b = VirtualMachine(h1, "vm-b")
        cluster.add_vm(vm_a)
        cluster.add_vm(vm_b)
        network = FreeFlowNetwork(
            cluster, policy_config=PolicyConfig(shm_across_vms=True)
        )
        from repro.cluster import ContainerSpec

        a = cluster.submit(ContainerSpec("va", pinned_host="vm-a"))
        b = cluster.submit(ContainerSpec("vb", pinned_host="vm-b"))
        network.attach(a)
        network.attach(b)

        def go():
            conn = yield from network.connect_containers("va", "vb")
            yield from conn.a.send(1024, payload="x")
            message = yield from conn.b.recv()
            return conn, message.payload

        process = env.process(go())
        conn, payload = env.run(until=process)
        assert isinstance(conn.channel, NetVmChannel)
        assert payload == "x"

    def test_same_vm_pair_uses_plain_shm(self, env, cluster, network):
        from repro.baselines import NetVmChannel
        from repro.cluster import ContainerSpec
        from repro.hardware import VirtualMachine

        h1 = cluster.host("h1")
        vm = VirtualMachine(h1, "vm-x")
        cluster.add_vm(vm)
        a = cluster.submit(ContainerSpec("xa", pinned_host="vm-x"))
        b = cluster.submit(ContainerSpec("xb", pinned_host="vm-x"))
        network.attach(a)
        network.attach(b)

        def go():
            conn = yield from network.connect_containers("xa", "xb")
            return conn

        process = env.process(go())
        conn = env.run(until=process)
        assert not isinstance(conn.channel, NetVmChannel)
        assert conn.mechanism.value == "shm"


class TestAutoInvalidation:
    def test_watch_invalidates_on_republish(self, env, cluster, network,
                                            three_containers, runner):
        network.enable_auto_invalidation()

        def go():
            yield from network.resolve("web", "cache")
            assert network.cache_misses == 1
            # Simulate a move published by some other actor.
            cluster.relocate("cache", "h2")
            network.orchestrator.refresh_location("cache")
            yield env.timeout(0)  # let the watcher pump run
            decision = yield from network.resolve("web", "cache")
            return decision

        decision = runner(go())
        assert network.cache_misses == 2  # cache was auto-invalidated
        assert decision.mechanism.value == "rdma"

    def test_enable_twice_is_idempotent(self, network):
        network.enable_auto_invalidation()
        watcher = network._watcher
        network.enable_auto_invalidation()
        assert network._watcher is watcher

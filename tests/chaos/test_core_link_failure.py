"""The core-link-failure scenario: reroute, conserve, never reorder."""

import json

import pytest

from repro.chaos.runner import run_scenario
from repro.chaos.scenario import Scenario
from repro.chaos.scenarios import SCENARIOS, get


def test_scenario_is_registered():
    assert "core-link-failure" in SCENARIOS
    scenario = get("core-link-failure")
    assert scenario.fat_tree_k == 4
    assert scenario.conservation == "exact"


def test_fat_tree_scenario_validation():
    with pytest.raises(ValueError, match="even"):
        Scenario(name="bad", description="", hosts=2, containers=(),
                 traffic=(), steps=(), duration_s=1.0, fat_tree_k=3)
    with pytest.raises(ValueError, match="exceed"):
        Scenario(name="bad", description="", hosts=3,
                 containers=(), traffic=(), steps=(), duration_s=1.0,
                 fat_tree_k=2)


def test_core_link_failure_passes_and_reroutes():
    report = run_scenario(get("core-link-failure"), seed=1)
    assert report["ok"], report["violations"]
    assert report["faults"]["link"]["link_fails"] == 1
    assert report["faults"]["link"]["link_heals"] == 1
    # Exact conservation across the outage.
    for counts in report["traffic"].values():
        assert counts["received"] == counts["sent"] > 0


def test_core_link_failure_report_is_deterministic():
    reports = [
        json.dumps(run_scenario(get("core-link-failure"), seed=7),
                   sort_keys=True)
        for _ in range(2)
    ]
    assert reports[0] == reports[1]


def test_fat_tree_harness_uses_multi_path_fabric():
    from repro.chaos.runner import ChaosHarness
    from repro.hardware import FatTreeFabric

    harness = ChaosHarness(get("core-link-failure"), seed=1)
    assert isinstance(harness.fabric, FatTreeFabric)
    assert harness.fabric.topology.k == 4


def test_flat_scenarios_still_use_single_switch():
    from repro.chaos.runner import ChaosHarness
    from repro.hardware import Fabric, FatTreeFabric

    harness = ChaosHarness(get("nic-loss-midflow"), seed=1)
    assert type(harness.fabric) is Fabric
    assert not isinstance(harness.fabric, FatTreeFabric)

"""Unit tests for the invariant probes over synthetic end-state."""

from repro.chaos import (
    check_conservation,
    check_repair_time,
    check_trace_consistency,
)
from repro.core.flows import FlowState, FlowTable
from repro.chaos.invariants import check_convergence
from repro.telemetry.events import FLOW_TRANSITION, EventLog


# -- convergence ---------------------------------------------------------------


def test_convergence_passes_on_active_flows(env):
    table = FlowTable(env)
    flow = table.open("a", "b")
    table.transition(flow, FlowState.ACTIVE, reason="test")
    assert check_convergence(table) == []


def test_convergence_flags_stuck_flow(env):
    table = FlowTable(env)
    flow = table.open("a", "b")
    table.transition(flow, FlowState.ACTIVE, reason="test")
    table.transition(flow, FlowState.BROKEN, reason="test")
    violations = check_convergence(table)
    assert len(violations) == 1
    assert violations[0].invariant == "convergence"
    assert "broken" in violations[0].detail


# -- conservation --------------------------------------------------------------


def test_exact_conservation_passes():
    counters = {"a->b": {"sent": 10, "received": 10}}
    assert check_conservation(counters, "exact") == []


def test_exact_conservation_flags_loss():
    counters = {"a->b": {"sent": 10, "received": 8}}
    violations = check_conservation(counters, "exact")
    assert len(violations) == 1
    assert "lost" in violations[0].detail


def test_no_forge_tolerates_loss_but_not_forgery():
    lossy = {"a->b": {"sent": 10, "received": 7}}
    assert check_conservation(lossy, "no-forge") == []
    forged = {"a->b": {"sent": 10, "received": 11}}
    violations = check_conservation(forged, "no-forge")
    assert len(violations) == 1
    assert "forged" in violations[0].detail


def test_forgery_flagged_even_in_exact_mode():
    counters = {"a->b": {"sent": 5, "received": 6}}
    violations = check_conservation(counters, "exact")
    assert [v.invariant for v in violations] == ["conservation"]
    assert "forged" in violations[0].detail


# -- repair time ---------------------------------------------------------------


def _transition(log, t, flow, old, new):
    log.emit(t, FLOW_TRANSITION, flow=flow, src="a", dst="b",
             old=old, new=new, reason="test")


def test_repair_within_bound_passes():
    log = EventLog(64)
    _transition(log, 0.0, "f", "none", "active")
    _transition(log, 1.0, "f", "active", "broken")
    _transition(log, 1.5, "f", "broken", "rebinding")
    _transition(log, 2.0, "f", "rebinding", "active")
    assert check_repair_time(log, bound_s=1.5) == []


def test_repair_over_bound_flagged():
    log = EventLog(64)
    _transition(log, 1.0, "f", "active", "broken")
    _transition(log, 5.0, "f", "broken", "active")
    violations = check_repair_time(log, bound_s=1.0)
    assert len(violations) == 1
    assert violations[0].invariant == "repair-time"


def test_still_broken_flow_is_not_repair_times_problem():
    log = EventLog(64)
    _transition(log, 1.0, "f", "active", "broken")
    assert check_repair_time(log, bound_s=0.1) == []


# -- trace consistency ---------------------------------------------------------


def test_consistent_history_passes():
    log = EventLog(64)
    _transition(log, 0.0, "f", "none", "resolving")
    _transition(log, 0.1, "f", "resolving", "active")
    _transition(log, 0.2, "f", "active", "closed")
    assert check_trace_consistency(log) == []


def test_gap_in_history_flagged():
    log = EventLog(64)
    _transition(log, 0.0, "f", "none", "active")
    _transition(log, 0.2, "f", "broken", "active")  # missing active->broken
    violations = check_trace_consistency(log)
    assert len(violations) == 1
    assert "gap" in violations[0].detail


def test_history_not_starting_at_none_flagged():
    log = EventLog(64)
    _transition(log, 0.0, "f", "active", "broken")
    violations = check_trace_consistency(log)
    assert len(violations) == 1
    assert "'none'" in violations[0].detail


def test_transition_after_close_flagged():
    log = EventLog(64)
    _transition(log, 0.0, "f", "none", "active")
    _transition(log, 0.1, "f", "active", "closed")
    _transition(log, 0.2, "f", "closed", "active")
    violations = check_trace_consistency(log)
    assert len(violations) == 1
    assert "after close" in violations[0].detail


def test_eviction_makes_probes_unsound():
    log = EventLog(2)
    _transition(log, 0.0, "f", "none", "active")
    _transition(log, 0.1, "f", "active", "broken")
    _transition(log, 0.2, "f", "broken", "active")   # evicts the first
    violations = check_trace_consistency(log)
    assert any(v.detail.startswith("event log evicted")
               for v in violations)

"""End-to-end tests for the chaos runner and the scenario catalogue."""

import json

import pytest

from repro.chaos import SCENARIOS, SMOKE_SCENARIO, get, run_scenario
from repro.chaos.runner import main


def test_catalogue_has_at_least_six_scenarios():
    assert len(SCENARIOS) >= 6
    assert SMOKE_SCENARIO in SCENARIOS


def test_every_catalogue_entry_validates():
    for name in SCENARIOS:
        scenario = get(name)
        assert scenario.name == name
        assert scenario.steps


def test_get_unknown_scenario_lists_known():
    with pytest.raises(KeyError, match="known:"):
        get("does-not-exist")


def test_smoke_scenario_passes_clean():
    report = run_scenario(get(SMOKE_SCENARIO), seed=1)
    assert report["ok"]
    assert report["violations"] == []
    total_sent = sum(c["sent"] for c in report["traffic"].values())
    assert total_sent > 0
    # The NIC fault actually moved flows: rebinds happened both ways.
    assert report["reconciler"]["rebinds"] >= 2
    assert report["faults"]["nic"]["capability_faults"] >= 1


def test_smoke_report_is_deterministic():
    a = run_scenario(get(SMOKE_SCENARIO), seed=3)
    b = run_scenario(get(SMOKE_SCENARIO), seed=3)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_different_seed_changes_details_not_verdict():
    a = run_scenario(get(SMOKE_SCENARIO), seed=1)
    b = run_scenario(get(SMOKE_SCENARIO), seed=99)
    assert a["ok"] and b["ok"]


def test_report_shape():
    report = run_scenario(get(SMOKE_SCENARIO), seed=1)
    for key in ("scenario", "seed", "conservation_mode", "steps",
                "traffic", "flows", "faults", "reconciler",
                "transitions", "violations", "ok"):
        assert key in report
    for flow in report["flows"].values():
        assert flow["state"] == "active"
    assert report["transitions"] > 0


def test_cli_list_exits_zero(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert SMOKE_SCENARIO in out


def test_cli_unknown_scenario_exits_two(capsys):
    assert main(["--scenario", "nope"]) == 2


def test_cli_smoke_writes_json(tmp_path, capsys):
    path = tmp_path / "report.json"
    assert main(["--smoke", "--json", str(path)]) == 0
    report = json.loads(path.read_text())
    assert report["ok"]
    assert [r["scenario"] for r in report["scenarios"]] == [SMOKE_SCENARIO]
    out = capsys.readouterr().out
    assert "PASS" in out

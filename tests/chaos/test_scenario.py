"""Validation tests for the declarative scenario DSL."""

import pytest

from repro.chaos import Placement, Scenario, Step, TrafficPair


def noop(harness):
    pass


def minimal(**overrides):
    kwargs = dict(
        name="t",
        description="test scenario",
        hosts=2,
        containers=(Placement("a", "host0"), Placement("b", "host1")),
        traffic=(TrafficPair("a", "b"),),
        steps=(Step(0.001, "one", noop),),
        duration_s=0.002,
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


def test_minimal_scenario_builds():
    scenario = minimal()
    assert scenario.conservation == "exact"
    assert scenario.schedule() == [(0.001, "one")]


def test_traffic_pair_label():
    assert TrafficPair("web", "db").label == "web->db"


def test_step_rejects_negative_time():
    with pytest.raises(ValueError):
        Step(-0.001, "bad", noop)


def test_step_rejects_non_callable():
    with pytest.raises(TypeError):
        Step(0.001, "bad", "not-a-function")


def test_zero_hosts_rejected():
    with pytest.raises(ValueError):
        minimal(hosts=0)


def test_nonpositive_duration_rejected():
    with pytest.raises(ValueError):
        minimal(duration_s=0.0)


def test_unknown_conservation_mode_rejected():
    with pytest.raises(ValueError):
        minimal(conservation="lossy")


def test_unsorted_steps_rejected():
    steps = (Step(0.002, "late", noop), Step(0.001, "early", noop))
    with pytest.raises(ValueError, match="sorted"):
        minimal(steps=steps)


def test_step_beyond_duration_rejected():
    with pytest.raises(ValueError, match="beyond"):
        minimal(steps=(Step(0.005, "too late", noop),))


def test_duplicate_container_names_rejected():
    containers = (Placement("a", "host0"), Placement("a", "host1"))
    with pytest.raises(ValueError, match="duplicate"):
        minimal(containers=containers)


def test_traffic_referencing_unknown_container_rejected():
    with pytest.raises(ValueError, match="unknown"):
        minimal(traffic=(TrafficPair("a", "ghost"),))

"""Unit tests for the fault injectors (each wraps a real seam)."""

import pytest

from repro.chaos import (
    FaultyKVStore,
    HostInjector,
    KernelPathFaults,
    LinkInjector,
    NicInjector,
)
from repro.cluster import KeyValueStore
from repro.netstack import tcp as _tcp
from repro.sim.rand import RandomStream
from repro.transports import Mechanism


def stream(name="test", seed=1):
    return RandomStream(seed, name)


# -- LinkInjector --------------------------------------------------------------


class TestLinkInjector:
    def test_degrade_and_restore_rates(self, fabric, host_pair):
        h1, h2 = host_pair
        link = LinkInjector(fabric)
        egress0 = h1.nic.egress.rate_bytes
        ingress0 = h1.nic.ingress.rate_bytes
        link.degrade_host(h1, 0.5)
        assert h1.nic.egress.rate_bytes == pytest.approx(egress0 * 0.5)
        assert h1.nic.ingress.rate_bytes == pytest.approx(ingress0 * 0.5)
        # A second degrade compounds from the original, not the degraded.
        link.degrade_host(h1, 0.25)
        assert h1.nic.egress.rate_bytes == pytest.approx(egress0 * 0.25)
        link.restore_rates()
        assert h1.nic.egress.rate_bytes == pytest.approx(egress0)
        assert h1.nic.ingress.rate_bytes == pytest.approx(ingress0)

    def test_degrade_factor_validated(self, fabric, host_pair):
        link = LinkInjector(fabric)
        with pytest.raises(ValueError):
            link.degrade_host(host_pair[0], 0.0)
        with pytest.raises(ValueError):
            link.degrade_host(host_pair[0], 1.5)

    def test_partition_blocks_and_heal_releases(self, fabric, host_pair):
        h1, h2 = host_pair
        link = LinkInjector(fabric)
        link.partition_hosts([h1], [h2])
        assert fabric.partitioned(h1.nic, h2.nic)
        assert fabric.partitioned(h2.nic, h1.nic)  # both directions
        link.heal()
        assert not fabric.partitioned(h1.nic, h2.nic)

    def test_partition_validation(self, fabric, host_pair):
        h1, h2 = host_pair
        with pytest.raises(ValueError):
            fabric.partition([], [h2.nic])
        with pytest.raises(ValueError):
            fabric.partition([h1.nic], [h1.nic, h2.nic])

    def test_partition_parks_traffic_until_heal(self, env, fabric,
                                                host_pair):
        """Bytes sent into a partition arrive after heal — never vanish."""
        h1, h2 = host_pair
        link = LinkInjector(fabric)
        link.partition_hosts([h1], [h2])
        delivered = []

        def sender():
            yield from fabric.send(h1.nic, h2.nic, 4096,
                                   lambda: delivered.append(env.now))

        def healer():
            yield env.timeout(0.01)
            link.heal()

        env.process(sender())
        env.process(healer())
        env.run()
        assert delivered and delivered[0] >= 0.01


# -- KernelPathFaults ----------------------------------------------------------


class TestKernelPathFaults:
    def test_loss_returns_rto_scale_delay(self):
        faults = KernelPathFaults(stream(), loss_p=1.0, rto_s=1e-3)
        delay = faults.rx_delay(None, None)
        assert 1e-3 <= delay <= 2e-3
        assert faults.losses == 1

    def test_reorder_returns_jitter_delay(self):
        faults = KernelPathFaults(stream(), reorder_p=1.0, jitter_s=1e-4)
        delay = faults.rx_delay(None, None)
        assert 0.0 <= delay <= 1e-4
        assert faults.reorders == 1

    def test_clean_path_passes_through(self):
        faults = KernelPathFaults(stream())
        assert faults.rx_delay(None, None) == 0.0
        assert faults.passed == 1

    def test_install_uninstall_and_exclusivity(self):
        faults = KernelPathFaults(stream())
        assert faults.install() is faults
        try:
            assert _tcp.FAULTS is faults
            with pytest.raises(RuntimeError):
                KernelPathFaults(stream()).install()
        finally:
            faults.uninstall()
        assert _tcp.FAULTS is None

    def test_same_seed_same_fault_pattern(self):
        a = KernelPathFaults(stream(seed=9), loss_p=0.3)
        b = KernelPathFaults(stream(seed=9), loss_p=0.3)
        pattern_a = [a.rx_delay(None, None) for _ in range(50)]
        pattern_b = [b.rx_delay(None, None) for _ in range(50)]
        assert pattern_a == pattern_b

    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError):
            KernelPathFaults(stream(), rto_s=-1.0)


# -- NicInjector ---------------------------------------------------------------


class TestNicInjector:
    def test_lose_bypass_flips_policy_to_tcp(self, network,
                                             three_containers):
        nic = NicInjector(network)
        assert network.orchestrator.decide(
            "web", "db").mechanism is Mechanism.RDMA
        nic.lose_bypass("h2")
        assert network.orchestrator.decide(
            "web", "db").mechanism is Mechanism.TCP
        nic.restore("h2")
        assert network.orchestrator.decide(
            "web", "db").mechanism is Mechanism.RDMA

    def test_degraded_host_forces_tcp_even_intra_host(self, network,
                                                      three_containers):
        nic = NicInjector(network)
        assert network.orchestrator.decide(
            "web", "cache").mechanism is Mechanism.SHM
        nic.degrade("h1")
        decision = network.orchestrator.decide("web", "cache")
        assert decision.mechanism is Mechanism.TCP
        assert "degraded" in decision.reason
        nic.restore("h1")
        assert network.orchestrator.decide(
            "web", "cache").mechanism is Mechanism.SHM


# -- HostInjector --------------------------------------------------------------


class TestHostInjector:
    def test_via_watch_crash_touches_only_cluster(self, cluster, network,
                                                  three_containers):
        injector = HostInjector(network, cluster)
        broken = injector.crash("h2", via_watch=True)
        assert broken == []
        assert "/cluster/hosts/h2" not in cluster.kv
        injector.restart("h2")
        assert "/cluster/hosts/h2" in cluster.kv

    def test_respawn_resubmits_and_attaches(self, cluster, network,
                                            three_containers):
        injector = HostInjector(network, cluster)
        injector.crash("h2")
        container = injector.respawn("db", on_host="h1")
        assert container.host.name == "h1"
        assert network.orchestrator.locate("db").name == "h1"


# -- FaultyKVStore -------------------------------------------------------------


class TestFaultyKVStore:
    def test_drop_all_starves_the_watch(self, env):
        kv = KeyValueStore(env)
        watch = kv.watch("/c/")
        fault = FaultyKVStore(kv, stream(), drop_p=1.0).install()
        kv.put("/c/a", 1)
        assert watch.pending() == []
        assert fault.dropped == 1
        assert kv.get("/c/a") == 1  # data plane untouched
        fault.uninstall()
        kv.put("/c/b", 2)
        assert [e.key for e in watch.pending()] == ["/c/b"]

    def test_duplicate_all_delivers_twice(self, env):
        kv = KeyValueStore(env)
        watch = kv.watch("/c/")
        fault = FaultyKVStore(kv, stream(), duplicate_p=1.0).install()
        kv.put("/c/a", 1)
        assert [e.key for e in watch.pending()] == ["/c/a", "/c/a"]
        assert fault.duplicated == 1
        fault.uninstall()

    def test_stall_buffers_and_heal_flushes_in_order(self, env):
        kv = KeyValueStore(env)
        watch = kv.watch("/c/")
        fault = FaultyKVStore(kv, stream()).install()
        fault.stall()
        kv.put("/c/a", 1)
        kv.put("/c/b", 2)
        kv.delete("/c/a")
        assert watch.pending() == []
        assert fault.stalled == 3
        flushed = fault.heal()
        assert flushed == 3
        assert [(e.kind, e.key) for e in watch.pending()] == [
            ("put", "/c/a"), ("put", "/c/b"), ("delete", "/c/a"),
        ]
        fault.uninstall()

    def test_heal_with_resync_replays_state(self, env):
        kv = KeyValueStore(env)
        watch = kv.watch("/c/")
        fault = FaultyKVStore(kv, stream(), drop_p=1.0).install()
        kv.put("/c/a", 1)            # dropped on the floor
        assert watch.pending() == []
        fault.drop_p = 0.0
        replayed = fault.heal(resync=[watch])
        assert replayed == 1
        assert [e.key for e in watch.pending()] == ["/c/a"]
        fault.uninstall()

    def test_delayed_delivery_preserves_order(self, env):
        kv = KeyValueStore(env)
        watch = kv.watch("/c/")
        fault = FaultyKVStore(kv, stream(), delay_s=1e-3,
                              jitter_s=1e-3).install()
        kv.put("/c/a", 1)
        kv.put("/c/b", 2)
        kv.put("/c/c", 3)
        assert watch.pending() == []     # nothing lands synchronously
        env.run(until=0.05)
        assert [e.key for e in watch.pending()] == ["/c/a", "/c/b", "/c/c"]
        assert fault.delivered == 3
        fault.uninstall()

    def test_uninstall_flushes_held_events(self, env):
        kv = KeyValueStore(env)
        watch = kv.watch("/c/")
        fault = FaultyKVStore(kv, stream()).install()
        fault.stall()
        kv.put("/c/a", 1)
        fault.uninstall()
        assert [e.key for e in watch.pending()] == ["/c/a"]
        assert kv._notify.__self__ is kv  # original bound method restored

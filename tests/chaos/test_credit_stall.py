"""The credit-stall scenario: a withheld-CREDIT fault drained by the
wait-for graph's live report, then healed without losing a byte."""

import json

from repro.chaos import get, run_scenario
from repro.chaos.faults import CreditStaller


def test_credit_stall_scenario_passes_clean():
    report = run_scenario(get("credit-stall"), seed=1)
    assert report["ok"], report["violations"]
    assert report["violations"] == []
    # The scenario's own probe verified: credits actually stalled, the
    # wait-for snapshot named the parked sender and the full credit
    # ownership chain, and the heal/flush delivered every byte.


def test_credit_stall_report_is_deterministic():
    a = run_scenario(get("credit-stall"), seed=5)
    b = run_scenario(get("credit-stall"), seed=5)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_credit_staller_install_is_reversible():
    class FakeSock:
        def _return_credits(self):
            yield "orig"

    sock = FakeSock()
    staller = CreditStaller(sock)
    assert not staller.installed
    staller.install()
    assert staller.installed
    assert "_return_credits" in sock.__dict__  # instance override in place
    staller.uninstall()
    assert "_return_credits" not in sock.__dict__
    assert list(sock._return_credits()) == ["orig"]

"""Coverage for assorted paths not exercised elsewhere."""

import pytest

from repro.cluster import BinPackStrategy, ClusterOrchestrator, ContainerSpec
from repro.core import FreeFlowAgent, Middlebox, TokenBucket
from repro.errors import (
    AddressError,
    ChannelRebound,
    ConnectionRefused,
    FreeFlowError,
    MigrationError,
    OrchestrationError,
    QueuePairStateError,
    SocketError,
    TransportError,
    TransportUnavailable,
    UnknownContainer,
    VerbsError,
)
from repro.hardware import Fabric, Host
from repro.sim import Environment, ThroughputTimeline
from repro.transports import Mechanism


class TestErrorHierarchy:
    def test_everything_derives_from_freeflow_error(self):
        for exc_type in (
            AddressError, ChannelRebound, ConnectionRefused,
            MigrationError, OrchestrationError, QueuePairStateError,
            SocketError, TransportError, TransportUnavailable,
            UnknownContainer, VerbsError,
        ):
            assert issubclass(exc_type, FreeFlowError)

    def test_specialisations(self):
        assert issubclass(TransportUnavailable, TransportError)
        assert issubclass(UnknownContainer, OrchestrationError)
        assert issubclass(QueuePairStateError, VerbsError)


class TestThroughputTimeline:
    def test_bucketing(self, env):
        timeline = ThroughputTimeline(env, bucket_s=1.0)

        def driver():
            timeline.add(100)
            yield env.timeout(1.0)
            timeline.add(300)
            yield env.timeout(1.0)

        env.run(until=env.process(driver()))
        series = timeline.series()
        assert series == [(0.0, 100.0), (1.0, 300.0)]

    def test_empty_series(self, env):
        assert ThroughputTimeline(env).series() == []
        with pytest.raises(ValueError):
            ThroughputTimeline(env).minimum_rate()

    def test_gap_buckets_are_zero(self, env):
        timeline = ThroughputTimeline(env, bucket_s=1.0)

        def driver():
            timeline.add(10)
            yield env.timeout(2.5)
            timeline.add(10)

        env.run(until=env.process(driver()))
        series = timeline.series()
        assert series[1] == (1.0, 0.0)
        assert timeline.minimum_rate() == 0.0

    def test_validation(self, env):
        with pytest.raises(ValueError):
            ThroughputTimeline(env, bucket_s=0)


class TestFabricHelpers:
    def test_path_latency_closed_form(self, env):
        fabric = Fabric(env)
        latency = fabric.path_latency(1000, rate_bytes=1e6)
        assert latency == pytest.approx(
            2 * 1e-3 + fabric.one_way_latency_s
        )


class TestBinPackScheduling:
    def test_cluster_packs_with_binpack(self, env, fabric):
        cluster = ClusterOrchestrator(env, strategy=BinPackStrategy())
        for name in ("h1", "h2"):
            cluster.add_host(Host(env, name, fabric=fabric))
        placed = [cluster.submit(ContainerSpec(f"c{i}")).host.name
                  for i in range(4)]
        # BinPack keeps piling onto one host.
        assert len(set(placed)) == 1


class TestAgentTcpRelay:
    def test_relay_lane_over_tcp_backing(self, env, host_pair, runner):
        """The agent can relay over kernel TCP too (shm edges + TCP
        trunk) even though build_channel prefers the direct TCP path."""
        h1, h2 = host_pair
        a1, a2 = FreeFlowAgent(h1), FreeFlowAgent(h2)
        lane = a1.relay_lane(a2, Mechanism.TCP)

        def flow():
            yield from lane.send(4096, payload="via-tcp-trunk")
            message = yield from lane.recv()
            return message.payload

        assert runner(flow()) == "via-tcp-trunk"
        assert a1.stats.messages_relayed == 1


class TestComposedPolicies:
    def test_middlebox_and_rate_limit_compose(self, env, cluster, runner):
        """A flow can be both inspected and shaped."""
        from repro.core import FreeFlowNetwork
        from repro.hardware import gbps
        from repro.metrics import run_stream

        middlebox = Middlebox(name="dpi", cycles_per_byte=0.1)
        network = FreeFlowNetwork(
            cluster,
            middlebox=middlebox,
            tenant_rate_limits={"t": gbps(8)},
        )
        a = cluster.submit(ContainerSpec("a", tenant="t", pinned_host="h1"))
        b = cluster.submit(ContainerSpec("b", tenant="t", pinned_host="h1"))
        network.attach(a)
        network.attach(b)

        def go():
            connection = yield from network.connect_containers("a", "b")
            return connection

        connection = runner(go())
        result = run_stream(env, [(connection.a, connection.b)],
                            duration_s=0.03, hosts=[a.host])
        assert result.gbps == pytest.approx(8, rel=0.15)   # cap binds
        assert middlebox.inspected_messages > 0            # and inspected


class TestSocketBacklog:
    def test_backlog_limits_pending_accepts(self, env, cluster, network):
        from repro.core import SocketLayer

        server = cluster.submit(ContainerSpec("srv", pinned_host="h1"))
        network.attach(server)
        clients = []
        for i in range(3):
            c = cluster.submit(ContainerSpec(f"cl{i}", pinned_host="h1"))
            network.attach(c)
            clients.append(c)
        layer = SocketLayer(network)
        listener = layer.listen(server, 80, backlog=2)
        connected = []

        def client(container):
            sock = layer.socket(container)
            yield from sock.connect(server.ip, 80)
            connected.append(container.name)

        for c in clients:
            env.process(client(c))
        env.run(until=env.now + 0.01)
        # Only backlog-many connects complete while nobody accepts.
        assert len(connected) == 2

        def acceptor():
            yield from listener.accept()

        env.run(until=env.process(acceptor()))
        env.run(until=env.now + 0.01)
        assert len(connected) == 3


class TestOverlayAccounting:
    def test_encap_overhead_on_wire(self, env, host):
        from repro.netstack import OverlayRouter, RoutingMesh

        mesh = RoutingMesh(env)
        router = OverlayRouter(host, mesh.join("h1"))
        plain = host.spec.kernel.wire_bytes(10_000)
        encapped = router.wire_bytes(10_000)
        packets = -(-10_000 // host.spec.kernel.mtu_bytes)
        assert encapped == plain + packets * router.spec.encap_bytes

    def test_router_counters(self, env, host, runner):
        from repro.netstack import (
            EndpointAddr, OverlayRouter, RoutingMesh, Message,
        )

        mesh = RoutingMesh(env)
        router = OverlayRouter(host, mesh.join("h1"))
        delivered = []
        addr = EndpointAddr("10.40.0.2", 80)
        router.register(addr, delivered.append)
        assert router.has_endpoint(addr)
        message = Message(size_bytes=500, dst=addr)
        message.sent_at = env.now
        router.submit(message)
        env.run()
        assert delivered and router.messages_routed == 1
        assert router.bytes_routed == 500
        router.unregister(addr)
        assert not router.has_endpoint(addr)

    def test_router_rejects_self_peer(self, env, host):
        from repro.netstack import OverlayRouter, RoutingMesh

        mesh = RoutingMesh(env)
        router = OverlayRouter(host, mesh.join("h1"))
        with pytest.raises(ValueError):
            router.connect_peer(router)

    def test_duplicate_endpoint_rejected(self, env, host):
        from repro.errors import RoutingError
        from repro.netstack import EndpointAddr, OverlayRouter, RoutingMesh

        mesh = RoutingMesh(env)
        router = OverlayRouter(host, mesh.join("h1"))
        addr = EndpointAddr("10.40.0.2", 80)
        router.register(addr, lambda m: None)
        with pytest.raises(RoutingError):
            router.register(addr, lambda m: None)


class TestVnicAccounting:
    def test_post_counter_increments(self, env, cluster, network, runner):
        from repro.core import Opcode, WorkRequest

        a = cluster.submit(ContainerSpec("pa", pinned_host="h1"))
        b = cluster.submit(ContainerSpec("pb", pinned_host="h1"))
        va, vb = network.attach(a), network.attach(b)
        pa, pb = va.alloc_pd(), vb.alloc_pd()
        qa = va.create_qp(pa, va.create_cq(), va.create_cq())
        qb = vb.create_qp(pb, vb.create_cq(), vb.create_cq())
        mr_b = vb.reg_mr(pb, 1 << 16)

        def go():
            yield from network.connect(qa, qb)
            for _ in range(3):
                yield from qa.post_send(WorkRequest(
                    opcode=Opcode.WRITE, length=64,
                    remote_key=mr_b.rkey, signaled=False,
                ))
            yield env.timeout(0.001)

        runner(go())
        assert va.posts == 3


class TestKvWatchLifecycle:
    def test_cancelled_watch_removed_from_store(self, env):
        from repro.cluster import KeyValueStore

        kv = KeyValueStore(env)
        watch = kv.watch("/x/")
        assert watch in kv._watches
        watch.cancel()
        assert watch not in kv._watches

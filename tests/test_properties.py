"""Property-based tests (hypothesis) on core data structures/invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AddressExhausted
from repro.hardware import BandwidthPipe, Host
from repro.netstack import IpPool, RouteTable, segment_count
from repro.sim import Environment, Resource, Series, Store, Tank
from repro.sim.rand import RandomStream


# ---------------------------------------------------------------- sim core


@given(st.lists(st.floats(min_value=0, max_value=1e3), min_size=1,
                max_size=40))
@settings(max_examples=60, deadline=None)
def test_event_processing_order_is_chronological(delays):
    """Events must always be processed in non-decreasing time order."""
    env = Environment()
    seen = []
    for delay in delays:
        t = env.timeout(delay)
        t.callbacks.append(lambda e, d=delay: seen.append(env.now))
    env.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=30))
@settings(max_examples=40, deadline=None)
def test_resource_never_exceeds_capacity(capacity, jobs):
    env = Environment()
    resource = Resource(env, capacity=capacity)
    peak = {"value": 0}

    def worker():
        with resource.request() as request:
            yield request
            peak["value"] = max(peak["value"], resource.count)
            yield env.timeout(1)

    for _ in range(jobs):
        env.process(worker())
    env.run()
    assert peak["value"] <= capacity


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=50))
@settings(max_examples=40, deadline=None)
def test_store_preserves_fifo_order(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer())
    done = env.process(consumer())
    env.run(until=done)
    assert received == items


@given(st.lists(st.tuples(st.booleans(),
                          st.floats(min_value=0.001, max_value=10)),
                min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_tank_level_stays_in_bounds(operations):
    env = Environment()
    tank = Tank(env, capacity=100, initial=50)
    levels = []

    def driver():
        for is_put, amount in operations:
            event = tank.put(amount) if is_put else tank.get(amount)
            # Do not wait for blocked operations; just observe levels.
            levels.append(tank.level)
            yield env.timeout(0)

    env.process(driver())
    env.run()
    assert all(0 <= level <= 100 for level in levels)
    assert 0 <= tank.level <= 100


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                min_size=1, max_size=200),
       st.floats(min_value=0, max_value=100))
@settings(max_examples=60, deadline=None)
def test_series_percentile_bounded_and_monotone(samples, p):
    series = Series()
    series.extend(samples)
    value = series.percentile(p)
    assert series.minimum() <= value <= series.maximum()
    # Monotonicity in p.
    assert series.percentile(0) <= value <= series.percentile(100)


@given(st.integers(min_value=0, max_value=1 << 30),
       st.integers(min_value=1, max_value=1 << 20))
def test_segment_count_covers_payload_exactly(payload, segment):
    count = segment_count(payload, segment)
    assert count >= 1
    assert count * segment >= payload
    if payload > segment:
        assert (count - 1) * segment < payload


# ---------------------------------------------------------------- addressing


@given(st.integers(min_value=1, max_value=40))
@settings(max_examples=30, deadline=None)
def test_ipam_never_hands_out_duplicates(n):
    pool = IpPool("10.32.0.0/24")
    allocated = set()
    for _ in range(min(n, pool.capacity)):
        ip = pool.allocate()
        assert ip not in allocated
        assert ip in pool
        allocated.add(ip)


@given(st.lists(st.booleans(), min_size=1, max_size=120))
@settings(max_examples=30, deadline=None)
def test_ipam_allocate_release_interleaving(ops):
    """Invariant: allocated set size == allocations - releases; never a
    duplicate live address."""
    pool = IpPool("10.32.0.0/26")
    live: list[str] = []
    for do_allocate in ops:
        if do_allocate:
            try:
                ip = pool.allocate()
            except AddressExhausted:
                assert len(live) == pool.capacity
                continue
            assert ip not in live
            live.append(ip)
        elif live:
            pool.release(live.pop())
    assert set(pool.allocated) == set(live)


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                max_size=30))
@settings(max_examples=30, deadline=None)
def test_route_table_lookup_matches_installed_host_routes(last_octets):
    table = RouteTable("t")
    expected = {}
    for octet in last_octets:
        ip = f"10.0.0.{octet}"
        table.install(ip, f"host-{octet}")
        expected[ip] = f"host-{octet}"
    for ip, owner in expected.items():
        assert table.lookup(ip) == owner


# ---------------------------------------------------------------- hardware


@given(st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=100))
@settings(max_examples=25, deadline=None)
def test_pipe_conserves_bytes_and_respects_rate(flows, kbytes):
    env = Environment()
    pipe = BandwidthPipe(env, rate_bytes=1e6, chunk_bytes=1024)
    per_flow = kbytes * 1024

    def move():
        yield from pipe.transfer(per_flow)

    for _ in range(flows):
        env.process(move())
    env.run()
    total = flows * per_flow
    assert pipe.bytes_moved == total
    # Time can never beat the serialisation bound.
    assert env.now >= total / 1e6 - 1e-9


@given(st.integers(min_value=0, max_value=1 << 24))
@settings(max_examples=50, deadline=None)
def test_wire_bytes_monotone_and_bounded(payload):
    from repro.hardware import PAPER_TESTBED

    kernel = PAPER_TESTBED.kernel
    wire = kernel.wire_bytes(payload)
    assert wire >= payload
    if payload > 0:
        # Header overhead is bounded by one header per MTU (plus one).
        max_headers = (payload // kernel.mtu_bytes + 1) * kernel.header_bytes
        assert wire <= payload + max_headers


# ---------------------------------------------------------------- rand


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1,
                                                          max_size=20))
@settings(max_examples=40, deadline=None)
def test_random_streams_are_deterministic(seed, name):
    a = RandomStream(seed, name)
    b = RandomStream(seed, name)
    assert [a.randint(0, 10**9) for _ in range(3)] == [
        b.randint(0, 10**9) for _ in range(3)
    ]


@given(st.integers(min_value=1, max_value=1000),
       st.floats(min_value=0.1, max_value=3))
@settings(max_examples=40, deadline=None)
def test_zipf_always_in_range(n, skew):
    stream = RandomStream(0, "zipf")
    for _ in range(20):
        assert 0 <= stream.zipf_index(n, skew) < n

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterOrchestrator, ContainerSpec
from repro.core import FreeFlowNetwork
from repro.hardware import Fabric, Host
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def fabric(env):
    return Fabric(env)


@pytest.fixture
def host(env, fabric):
    return Host(env, "h1", fabric=fabric)


@pytest.fixture
def host_pair(env, fabric):
    return Host(env, "h1", fabric=fabric), Host(env, "h2", fabric=fabric)


@pytest.fixture
def cluster(env, host_pair):
    orchestrator = ClusterOrchestrator(env)
    for h in host_pair:
        orchestrator.add_host(h)
    return orchestrator


@pytest.fixture
def network(cluster):
    return FreeFlowNetwork(cluster)


@pytest.fixture
def three_containers(cluster, network):
    """web+cache co-located on h1, db alone on h2 — all attached."""
    web = cluster.submit(ContainerSpec("web", pinned_host="h1"))
    cache = cluster.submit(ContainerSpec("cache", pinned_host="h1"))
    db = cluster.submit(ContainerSpec("db", pinned_host="h2"))
    for c in (web, cache, db):
        network.attach(c)
    return web, cache, db


def run(env, generator):
    """Run a generator as a process to completion, return its value."""
    process = env.process(generator)
    return env.run(until=process)


@pytest.fixture
def runner(env):
    """Callable fixture: ``runner(gen)`` runs gen to completion."""

    def _run(generator):
        return run(env, generator)

    return _run

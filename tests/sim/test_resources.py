"""Unit tests for resources, stores and tanks."""

import pytest

from repro.sim import Environment, Resource, Store, Tank


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grants_up_to_capacity(self, env):
        resource = Resource(env, capacity=2)
        first, second, third = (resource.request() for _ in range(3))
        assert first.triggered and second.triggered
        assert not third.triggered

    def test_release_grants_next_waiter(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        resource.release(first)
        assert second.triggered

    def test_with_block_releases(self, env, runner):
        resource = Resource(env, capacity=1)
        order = []

        def worker(name):
            with resource.request() as request:
                yield request
                order.append((env.now, name))
                yield env.timeout(1)

        env.process(worker("a"))
        done = env.process(worker("b"))
        env.run(until=done)
        assert order == [(0, "a"), (1, "b")]

    def test_cancel_queued_request(self, env):
        resource = Resource(env, capacity=1)
        resource.request()
        queued = resource.request()
        queued.cancel()
        assert queued not in resource.queue

    def test_priority_order(self, env):
        resource = Resource(env, capacity=1)
        holder = resource.request()
        low = resource.request(priority=5)
        high = resource.request(priority=1)
        resource.release(holder)
        assert high.triggered
        assert not low.triggered

    def test_count_tracks_users(self, env):
        resource = Resource(env, capacity=3)
        requests = [resource.request() for _ in range(2)]
        assert resource.count == 2
        resource.release(requests[0])
        assert resource.count == 1


class TestStore:
    def test_put_get_fifo(self, env, runner):
        store = Store(env)

        def flow():
            yield store.put("first")
            yield store.put("second")
            a = yield store.get()
            b = yield store.get()
            return a, b

        assert runner(flow()) == ("first", "second")

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        results = []

        def consumer():
            item = yield store.get()
            results.append((env.now, item))

        def producer():
            yield env.timeout(3)
            yield store.put("x")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert results == [(3, "x")]

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        done = []

        def producer():
            yield store.put(1)
            yield store.put(2)  # blocks until a get
            done.append(env.now)

        def consumer():
            yield env.timeout(5)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert done == [5]

    def test_filtered_get(self, env, runner):
        store = Store(env)

        def flow():
            yield store.put(("b", 2))
            yield store.put(("a", 1))
            item = yield store.get(lambda i: i[0] == "a")
            return item

        assert runner(flow()) == ("a", 1)
        assert list(store.items) == [("b", 2)]

    def test_try_get_nonblocking(self, env):
        store = Store(env)
        assert store.try_get() is None
        store.put("x")
        assert store.try_get() == "x"

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_len(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestTank:
    def test_initial_level(self, env):
        tank = Tank(env, capacity=10, initial=4)
        assert tank.level == 4

    def test_put_blocks_at_capacity(self, env):
        tank = Tank(env, capacity=10)
        done = []

        def filler():
            yield tank.put(8)
            yield tank.put(8)  # must wait for a get
            done.append(env.now)

        def drainer():
            yield env.timeout(2)
            yield tank.get(8)

        env.process(filler())
        env.process(drainer())
        env.run()
        assert done == [2]
        assert tank.level == 8

    def test_get_blocks_until_available(self, env):
        tank = Tank(env, capacity=10)
        got = []

        def taker():
            yield tank.get(5)
            got.append(env.now)

        def giver():
            yield env.timeout(1)
            yield tank.put(5)

        env.process(taker())
        env.process(giver())
        env.run()
        assert got == [1]

    def test_invalid_arguments(self, env):
        with pytest.raises(ValueError):
            Tank(env, capacity=0)
        with pytest.raises(ValueError):
            Tank(env, capacity=5, initial=6)
        tank = Tank(env, capacity=5)
        with pytest.raises(ValueError):
            tank.put(-1)
        with pytest.raises(ValueError):
            tank.get(-1)


class TestInterruptAbandonsClaims:
    """Regression: an interrupted waiter must not leave a claim behind
    that would silently swallow the next item/slot (found via the live-
    migration rebind path)."""

    def test_interrupted_store_get_does_not_steal_items(self, env):
        from repro.sim import Interrupt

        store = Store(env)
        received = []

        def doomed():
            try:
                yield store.get()
            except Interrupt:
                return

        def survivor():
            item = yield store.get()
            received.append(item)

        victim = env.process(doomed())
        env.process(survivor())

        def driver():
            yield env.timeout(1)
            victim.interrupt()
            yield env.timeout(1)
            yield store.put("precious")

        env.process(driver())
        env.run()
        assert received == ["precious"]

    def test_interrupted_resource_request_leaves_queue(self, env):
        from repro.sim import Interrupt

        resource = Resource(env, capacity=1)
        holder = resource.request()
        order = []

        def doomed():
            try:
                with resource.request() as req:
                    yield req
            except Interrupt:
                order.append("interrupted")

        def patient():
            with resource.request() as req:
                yield req
                order.append("granted")

        victim = env.process(doomed())
        env.process(patient())

        def driver():
            yield env.timeout(1)
            victim.interrupt()
            yield env.timeout(1)
            resource.release(holder)

        env.process(driver())
        env.run()
        assert order == ["interrupted", "granted"]

    def test_interrupted_tank_get_withdraws(self, env):
        from repro.sim import Interrupt

        tank = Tank(env, capacity=10)
        got = []

        def doomed():
            try:
                yield tank.get(5)
            except Interrupt:
                return

        def survivor():
            yield tank.get(5)
            got.append(env.now)

        victim = env.process(doomed())
        env.process(survivor())

        def driver():
            yield env.timeout(1)
            victim.interrupt()
            yield env.timeout(1)
            yield tank.put(5)

        env.process(driver())
        env.run()
        assert got == [2]

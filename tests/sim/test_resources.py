"""Unit tests for resources, stores and tanks."""

import pytest

from repro.sim import Environment, Resource, Store, Tank


class TestResource:
    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grants_up_to_capacity(self, env):
        resource = Resource(env, capacity=2)
        first, second, third = (resource.request() for _ in range(3))
        assert first.triggered and second.triggered
        assert not third.triggered

    def test_release_grants_next_waiter(self, env):
        resource = Resource(env, capacity=1)
        first = resource.request()
        second = resource.request()
        resource.release(first)
        assert second.triggered

    def test_with_block_releases(self, env, runner):
        resource = Resource(env, capacity=1)
        order = []

        def worker(name):
            with resource.request() as request:
                yield request
                order.append((env.now, name))
                yield env.timeout(1)

        env.process(worker("a"))
        done = env.process(worker("b"))
        env.run(until=done)
        assert order == [(0, "a"), (1, "b")]

    def test_cancel_queued_request(self, env):
        resource = Resource(env, capacity=1)
        resource.request()
        queued = resource.request()
        queued.cancel()
        assert queued not in resource.queue

    def test_priority_order(self, env):
        resource = Resource(env, capacity=1)
        holder = resource.request()
        low = resource.request(priority=5)
        high = resource.request(priority=1)
        resource.release(holder)
        assert high.triggered
        assert not low.triggered

    def test_count_tracks_users(self, env):
        resource = Resource(env, capacity=3)
        requests = [resource.request() for _ in range(2)]
        assert resource.count == 2
        resource.release(requests[0])
        assert resource.count == 1


class TestStore:
    def test_put_get_fifo(self, env, runner):
        store = Store(env)

        def flow():
            yield store.put("first")
            yield store.put("second")
            a = yield store.get()
            b = yield store.get()
            return a, b

        assert runner(flow()) == ("first", "second")

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        results = []

        def consumer():
            item = yield store.get()
            results.append((env.now, item))

        def producer():
            yield env.timeout(3)
            yield store.put("x")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert results == [(3, "x")]

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        done = []

        def producer():
            yield store.put(1)
            yield store.put(2)  # blocks until a get
            done.append(env.now)

        def consumer():
            yield env.timeout(5)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert done == [5]

    def test_filtered_get(self, env, runner):
        store = Store(env)

        def flow():
            yield store.put(("b", 2))
            yield store.put(("a", 1))
            item = yield store.get(lambda i: i[0] == "a")
            return item

        assert runner(flow()) == ("a", 1)
        assert list(store.items) == [("b", 2)]

    def test_try_get_nonblocking(self, env):
        store = Store(env)
        assert store.try_get() is None
        store.put("x")
        assert store.try_get() == "x"

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_len(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestTank:
    def test_initial_level(self, env):
        tank = Tank(env, capacity=10, initial=4)
        assert tank.level == 4

    def test_put_blocks_at_capacity(self, env):
        tank = Tank(env, capacity=10)
        done = []

        def filler():
            yield tank.put(8)
            yield tank.put(8)  # must wait for a get
            done.append(env.now)

        def drainer():
            yield env.timeout(2)
            yield tank.get(8)

        env.process(filler())
        env.process(drainer())
        env.run()
        assert done == [2]
        assert tank.level == 8

    def test_get_blocks_until_available(self, env):
        tank = Tank(env, capacity=10)
        got = []

        def taker():
            yield tank.get(5)
            got.append(env.now)

        def giver():
            yield env.timeout(1)
            yield tank.put(5)

        env.process(taker())
        env.process(giver())
        env.run()
        assert got == [1]

    def test_invalid_arguments(self, env):
        with pytest.raises(ValueError):
            Tank(env, capacity=0)
        with pytest.raises(ValueError):
            Tank(env, capacity=5, initial=6)
        tank = Tank(env, capacity=5)
        with pytest.raises(ValueError):
            tank.put(-1)
        with pytest.raises(ValueError):
            tank.get(-1)


class TestInterruptAbandonsClaims:
    """Regression: an interrupted waiter must not leave a claim behind
    that would silently swallow the next item/slot (found via the live-
    migration rebind path)."""

    def test_interrupted_store_get_does_not_steal_items(self, env):
        from repro.sim import Interrupt

        store = Store(env)
        received = []

        def doomed():
            try:
                yield store.get()
            except Interrupt:
                return

        def survivor():
            item = yield store.get()
            received.append(item)

        victim = env.process(doomed())
        env.process(survivor())

        def driver():
            yield env.timeout(1)
            victim.interrupt()
            yield env.timeout(1)
            yield store.put("precious")

        env.process(driver())
        env.run()
        assert received == ["precious"]

    def test_interrupted_resource_request_leaves_queue(self, env):
        from repro.sim import Interrupt

        resource = Resource(env, capacity=1)
        holder = resource.request()
        order = []

        def doomed():
            try:
                with resource.request() as req:
                    yield req
            except Interrupt:
                order.append("interrupted")

        def patient():
            with resource.request() as req:
                yield req
                order.append("granted")

        victim = env.process(doomed())
        env.process(patient())

        def driver():
            yield env.timeout(1)
            victim.interrupt()
            yield env.timeout(1)
            resource.release(holder)

        env.process(driver())
        env.run()
        assert order == ["interrupted", "granted"]

    def test_interrupted_tank_get_withdraws(self, env):
        from repro.sim import Interrupt

        tank = Tank(env, capacity=10)
        got = []

        def doomed():
            try:
                yield tank.get(5)
            except Interrupt:
                return

        def survivor():
            yield tank.get(5)
            got.append(env.now)

        victim = env.process(doomed())
        env.process(survivor())

        def driver():
            yield env.timeout(1)
            victim.interrupt()
            yield env.timeout(1)
            yield tank.put(5)

        env.process(driver())
        env.run()
        assert got == [2]


class TestStoreFastPath:
    """The immediate-handoff fast path must not change observable order."""

    def test_get_from_buffer_triggers_synchronously(self, env):
        store = Store(env)
        store.put(1)
        get = store.get()
        # Fast path: triggered at creation, before any env.run().
        assert get.triggered
        env.run()
        assert get.value == 1

    def test_fifo_preserved_across_fast_and_queued_gets(self, env):
        store = Store(env)
        results = []

        def getter(name):
            item = yield store.get()
            results.append((name, item))

        env.process(getter("queued-a"))
        env.process(getter("queued-b"))
        env.run()  # both getters park on the empty store
        store.put(1)
        store.put(2)
        store.put(3)

        def late_getter():
            item = yield store.get()
            results.append(("late", item))

        env.process(late_getter())
        env.run()
        # Queued getters drain in arrival order; the latecomer gets the
        # remaining item — the fast path never lets it overtake.
        assert results == [("queued-a", 1), ("queued-b", 2), ("late", 3)]

    def test_predicate_get_fast_path_takes_matching_item(self, env):
        store = Store(env)
        for item in (1, 2, 3):
            store.put(item)
        get = store.get(predicate=lambda x: x == 2)
        assert get.triggered
        env.run()
        assert get.value == 2
        assert list(store.items) == [1, 3]

    def test_predicate_get_without_match_waits(self, env):
        store = Store(env)
        store.put(1)
        get = store.get(predicate=lambda x: x == 99)
        assert not get.triggered
        store.put(99)
        env.run()
        assert get.value == 99
        assert list(store.items) == [1]

    def test_fast_get_readmits_blocked_put(self, env):
        store = Store(env, capacity=1)
        store.put("a")
        blocked = store.put("b")
        assert not blocked.triggered  # store full, put parks
        get = store.get()
        assert get.triggered  # fast path handoff of "a"
        assert blocked.triggered  # freed slot admits the queued put
        env.run()
        assert get.value == "a"
        assert list(store.items) == ["b"]

    def test_put_fast_path_wakes_parked_getter(self, env):
        store = Store(env)
        results = []

        def getter():
            item = yield store.get()
            results.append(item)

        env.process(getter())
        env.run()
        put = store.put("x")
        assert put.triggered  # space available: accepted on the spot
        env.run()
        assert results == ["x"]

    def test_queued_puts_not_overtaken_by_newcomer(self, env):
        store = Store(env, capacity=1)
        store.put("a")
        first = store.put("b")
        second = store.put("c")
        env.run()
        assert not first.triggered and not second.triggered
        gets = [store.get(), store.get(), store.get()]
        env.run()
        assert [g.value for g in gets] == ["a", "b", "c"]


class TestTankFastPath:
    def test_put_get_trigger_synchronously_when_room(self, env):
        tank = Tank(env, capacity=10.0)
        put = tank.put(4.0)
        assert put.triggered
        assert tank.level == 4.0
        get = tank.get(3.0)
        assert get.triggered
        assert tank.level == 1.0

    def test_queued_put_not_overtaken_by_smaller_newcomer(self, env):
        tank = Tank(env, capacity=10.0, initial=8.0)
        big = tank.put(5.0)  # 8 + 5 > 10: parks
        small = tank.put(1.0)  # would fit, but must queue behind `big`
        assert not big.triggered
        assert not small.triggered
        assert tank.level == 8.0
        get = tank.get(5.0)  # frees room: head-of-line put admitted first
        assert get.triggered
        env.run()
        assert big.triggered
        assert small.triggered
        assert tank.level == 8.0 - 5.0 + 5.0 + 1.0

    def test_fast_get_wakes_blocked_put(self, env):
        tank = Tank(env, capacity=10.0, initial=10.0)
        put = tank.put(2.0)
        assert not put.triggered
        get = tank.get(2.0)
        assert get.triggered
        assert put.triggered
        assert tank.level == 10.0

    def test_queued_get_not_overtaken(self, env):
        tank = Tank(env, capacity=100.0)
        big = tank.get(50.0)  # empty: parks
        small = tank.get(1.0)  # must queue behind `big`
        tank.put(30.0)
        env.run()
        assert not big.triggered
        assert not small.triggered
        tank.put(25.0)
        env.run()
        assert big.triggered
        assert small.triggered
        assert tank.level == 30.0 + 25.0 - 50.0 - 1.0


class TestStoreDrain:
    """Bulk non-blocking drain: the consumption primitive behind
    coalesced watch delivery and batch completion reaping."""

    def test_drain_returns_fifo_and_clears(self, env):
        store = Store(env)
        for item in (1, 2, 3):
            store.put(item)
        assert store.drain() == [1, 2, 3]
        assert len(store) == 0
        assert store.drain() == []

    def test_drain_admits_blocked_puts_for_next_drain(self, env):
        store = Store(env, capacity=2)
        store.put(1)
        store.put(2)
        blocked = store.put(3)
        assert not blocked.triggered
        assert store.drain() == [1, 2]
        env.run()
        # The freed capacity admitted the blocked put — but only the
        # *next* drain sees it: a drain returns what had already been
        # delivered when it was called.
        assert blocked.triggered
        assert store.drain() == [3]

    def test_drain_wakes_parked_getter_via_later_put(self, env):
        store = Store(env)
        store.put(1)
        store.drain()
        got = []

        def getter():
            item = yield store.get()
            got.append(item)

        env.process(getter())
        env.run()
        assert got == []  # drain emptied the buffer: the getter parks
        store.put(2)
        env.run()
        assert got == [2]

"""Unit tests for the measurement instruments."""

import pytest

from repro.sim import Environment, IntervalRecorder, Series, TimeWeighted


class TestTimeWeighted:
    def test_constant_signal(self, env):
        tracker = TimeWeighted(env, initial=3.0)
        env.timeout(10)
        env.run()
        assert tracker.mean() == pytest.approx(3.0)

    def test_step_change_weighting(self, env):
        tracker = TimeWeighted(env, initial=0.0)

        def driver():
            yield env.timeout(4)
            tracker.record(10.0)
            yield env.timeout(6)

        env.process(driver())
        env.run()
        # 0 for 4s, 10 for 6s over 10s => 6.0
        assert tracker.mean() == pytest.approx(6.0)

    def test_add_is_relative(self, env):
        tracker = TimeWeighted(env, initial=1.0)
        tracker.add(2.0)
        assert tracker.value == 3.0
        tracker.add(-3.0)
        assert tracker.value == 0.0

    def test_min_max(self, env):
        tracker = TimeWeighted(env)
        tracker.record(5)
        tracker.record(-2)
        assert tracker.maximum() == 5
        assert tracker.minimum() == -2

    def test_reset_restarts_window(self, env):
        tracker = TimeWeighted(env, initial=10)

        def driver():
            yield env.timeout(5)
            tracker.reset()
            tracker.record(2)
            yield env.timeout(5)

        env.process(driver())
        env.run()
        assert tracker.mean() == pytest.approx(2.0)

    def test_mean_with_zero_span(self, env):
        tracker = TimeWeighted(env, initial=7)
        assert tracker.mean() == 7


class TestSeries:
    def test_basic_stats(self):
        series = Series()
        series.extend([1, 2, 3, 4, 5])
        assert series.mean() == 3
        assert series.minimum() == 1
        assert series.maximum() == 5
        assert series.median() == 3
        assert len(series) == 5

    def test_percentile_interpolation(self):
        series = Series()
        series.extend([0, 10])
        assert series.percentile(50) == pytest.approx(5)
        assert series.percentile(0) == 0
        assert series.percentile(100) == 10

    def test_percentile_single_sample(self):
        series = Series()
        series.add(42)
        assert series.percentile(99) == 42

    def test_empty_series_raises(self):
        series = Series()
        with pytest.raises(ValueError):
            series.mean()
        with pytest.raises(ValueError):
            series.percentile(50)

    def test_bad_percentile_rejected(self):
        series = Series()
        series.add(1)
        with pytest.raises(ValueError):
            series.percentile(101)

    def test_stdev(self):
        series = Series()
        series.extend([2, 4, 4, 4, 5, 5, 7, 9])
        assert series.stdev() == pytest.approx(2.138, abs=1e-3)
        single = Series()
        single.add(1)
        assert single.stdev() == 0.0

    def test_summary_keys(self):
        series = Series()
        series.extend(range(100))
        summary = series.summary()
        assert set(summary) == {"count", "mean", "min", "p50", "p99", "max"}
        assert summary["count"] == 100

    def test_samples_are_copied(self):
        series = Series()
        series.add(1)
        external = series.samples
        external.append(2)
        assert len(series) == 1


class TestIntervalRecorder:
    def test_utilisation_of_half_busy_worker(self, env):
        recorder = IntervalRecorder(env)

        def driver():
            recorder.busy()
            yield env.timeout(5)
            recorder.idle()
            yield env.timeout(5)

        env.process(driver())
        env.run()
        assert recorder.utilisation() == pytest.approx(0.5)
        assert recorder.utilisation_percent() == pytest.approx(50.0)

    def test_two_workers_counted(self, env):
        recorder = IntervalRecorder(env)

        def driver():
            recorder.busy(2)
            yield env.timeout(10)
            recorder.idle(2)

        env.process(driver())
        env.run()
        assert recorder.utilisation() == pytest.approx(2.0)

    def test_active_tracks_current(self, env):
        recorder = IntervalRecorder(env)
        recorder.busy(3)
        assert recorder.active == 3
        recorder.idle()
        assert recorder.active == 2


class TestStreamingSeries:
    def test_exact_moments_match_plain_series(self):
        from repro.sim import Series, StreamingSeries

        streaming = StreamingSeries()
        plain = Series()
        for value in (3.0, 1.0, 4.0, 1.0, 5.0, 9.0):
            streaming.add(value)
            plain.add(value)
        assert len(streaming) == len(plain)
        assert streaming.mean() == pytest.approx(plain.mean())
        assert streaming.minimum() == plain.minimum()
        assert streaming.maximum() == plain.maximum()

    def test_percentiles_exact_below_reservoir_size(self):
        from repro.sim import StreamingSeries

        series = StreamingSeries()
        series.extend(range(101))
        assert series.percentile(0) == 0
        assert series.percentile(50) == 50
        assert series.percentile(100) == 100
        assert series.median() == 50

    def test_append_aliases_add(self):
        from repro.sim import StreamingSeries

        series = StreamingSeries()
        series.append(2.5)
        assert len(series) == 1
        assert series.mean() == 2.5

    def test_empty_raises(self):
        from repro.sim import StreamingSeries

        series = StreamingSeries()
        with pytest.raises(ValueError):
            series.mean()
        with pytest.raises(ValueError):
            series.percentile(50)

    def test_invalid_arguments(self):
        from repro.sim import StreamingSeries

        with pytest.raises(ValueError):
            StreamingSeries(reservoir=0)
        series = StreamingSeries()
        series.add(1.0)
        with pytest.raises(ValueError):
            series.percentile(101)

    def test_deterministic_sampling(self):
        from repro.sim import StreamingSeries

        a = StreamingSeries(reservoir=16)
        b = StreamingSeries(reservoir=16)
        for value in range(10_000):
            a.add(value)
            b.add(value)
        assert a.samples == b.samples

    def test_million_samples_bounded_memory(self):
        # Acceptance: a 1M-sample stream must not grow memory linearly —
        # the reservoir stays at its fixed capacity while the exact
        # moments cover the full stream.
        from repro.sim import StreamingSeries

        n = 1_000_000
        series = StreamingSeries(reservoir=512)
        add = series.add
        for value in range(n):
            add(float(value))
        assert len(series) == n
        assert len(series.samples) == 512
        assert series.minimum() == 0.0
        assert series.maximum() == float(n - 1)
        assert series.mean() == pytest.approx((n - 1) / 2)
        # Reservoir percentiles approximate the uniform stream.
        assert series.percentile(50) == pytest.approx(n / 2, rel=0.15)
        summary = series.summary()
        assert summary["count"] == float(n)

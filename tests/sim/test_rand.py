"""Unit tests for deterministic random streams."""

import pytest

from repro.sim import RandomStream, StreamFactory


def test_same_seed_same_sequence():
    a = RandomStream(7, "traffic")
    b = RandomStream(7, "traffic")
    assert [a.uniform(0, 1) for _ in range(5)] == [
        b.uniform(0, 1) for _ in range(5)
    ]


def test_different_names_are_independent():
    a = RandomStream(7, "traffic")
    b = RandomStream(7, "placement")
    assert [a.uniform(0, 1) for _ in range(5)] != [
        b.uniform(0, 1) for _ in range(5)
    ]


def test_different_seeds_differ():
    assert RandomStream(1).uniform(0, 1) != RandomStream(2).uniform(0, 1)


def test_expovariate_positive_and_mean():
    stream = RandomStream(0)
    samples = [stream.expovariate(100.0) for _ in range(2000)]
    assert all(s >= 0 for s in samples)
    mean = sum(samples) / len(samples)
    assert mean == pytest.approx(0.01, rel=0.2)


def test_expovariate_bad_rate():
    with pytest.raises(ValueError):
        RandomStream(0).expovariate(0)


def test_pareto_size_bounded():
    stream = RandomStream(0)
    for _ in range(500):
        size = stream.pareto_size(1.2, 100, 10000)
        assert 100 <= size <= 10000


def test_pareto_bad_shape():
    with pytest.raises(ValueError):
        RandomStream(0).pareto_size(0, 1, 10)


def test_zipf_index_range_and_skew():
    stream = RandomStream(0)
    counts = [0] * 10
    for _ in range(3000):
        index = stream.zipf_index(10, skew=1.0)
        assert 0 <= index < 10
        counts[index] += 1
    # Rank 0 must be clearly more popular than rank 9.
    assert counts[0] > counts[9] * 2


def test_zipf_bad_n():
    with pytest.raises(ValueError):
        RandomStream(0).zipf_index(0)


def test_factory_caches_streams():
    factory = StreamFactory(3)
    assert factory.stream("x") is factory.stream("x")
    assert "x" in factory.names()


def test_factory_streams_reproducible():
    a = StreamFactory(3).stream("x").randint(0, 1000)
    b = StreamFactory(3).stream("x").randint(0, 1000)
    assert a == b


def test_choice_and_sample():
    stream = RandomStream(5)
    items = list(range(20))
    assert stream.choice(items) in items
    picked = stream.sample(items, 5)
    assert len(picked) == 5
    assert len(set(picked)) == 5


def test_shuffle_is_permutation():
    stream = RandomStream(5)
    items = list(range(10))
    shuffled = list(items)
    stream.shuffle(shuffled)
    assert sorted(shuffled) == items

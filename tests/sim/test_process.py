"""Unit tests for simulation processes."""

import pytest

from repro.sim import Environment, Interrupt


def test_process_returns_generator_value(env, runner):
    def work():
        yield env.timeout(1)
        return "result"

    assert runner(work()) == "result"
    assert env.now == 1


def test_process_is_an_event(env):
    def work():
        yield env.timeout(1)
        return 7

    process = env.process(work())

    def waiter():
        value = yield process
        return value * 2

    outer = env.process(waiter())
    assert env.run(until=outer) == 14


def test_sequential_timeouts_accumulate(env, runner):
    def work():
        yield env.timeout(1)
        yield env.timeout(2)
        return env.now

    assert runner(work()) == 3


def test_non_generator_rejected(env):
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_yielding_non_event_raises(env):
    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(TypeError, match="not an Event"):
        env.run()


def test_exception_in_process_propagates_to_waiter(env):
    def failing():
        yield env.timeout(1)
        raise ValueError("inner")

    def waiter():
        try:
            yield env.process(failing())
        except ValueError as exc:
            return f"caught {exc}"

    process = env.process(waiter())
    assert env.run(until=process) == "caught inner"


def test_unwaited_process_failure_surfaces(env):
    def failing():
        yield env.timeout(1)
        raise ValueError("unhandled")

    env.process(failing())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_interrupt_carries_cause(env):
    def sleeper():
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            return interrupt.cause

    def interrupter(target):
        yield env.timeout(5)
        target.interrupt("wake up")

    target = env.process(sleeper())
    env.process(interrupter(target))
    assert env.run(until=target) == "wake up"
    assert env.now == 5


def test_interrupt_dead_process_raises(env):
    def quick():
        yield env.timeout(1)

    process = env.process(quick())
    env.run()
    with pytest.raises(RuntimeError):
        process.interrupt()


def test_interrupted_process_can_continue(env):
    def resilient():
        total = 0
        try:
            yield env.timeout(100)
        except Interrupt:
            pass
        yield env.timeout(1)
        return env.now

    def interrupter(target):
        yield env.timeout(2)
        target.interrupt()

    target = env.process(resilient())
    env.process(interrupter(target))
    assert env.run(until=target) == 3


def test_is_alive_lifecycle(env):
    def work():
        yield env.timeout(1)

    process = env.process(work())
    assert process.is_alive
    env.run()
    assert not process.is_alive


def test_waiting_on_already_processed_event(env):
    done = env.timeout(1, value="early")
    env.run()

    def late_waiter():
        value = yield done
        return value

    process = env.process(late_waiter())
    assert env.run(until=process) == "early"


def test_interrupt_detaches_from_target_event(env):
    shared = env.event()

    def sleeper():
        try:
            yield shared
        except Interrupt:
            return "interrupted"

    def other_waiter():
        value = yield shared
        return value

    target = env.process(sleeper())
    other = env.process(other_waiter())

    def interrupter():
        yield env.timeout(1)
        target.interrupt()
        yield env.timeout(1)
        shared.succeed("for the other")

    env.process(interrupter())
    assert env.run(until=target) == "interrupted"
    assert env.run(until=other) == "for the other"


def test_process_return_none_by_default(env, runner):
    def work():
        yield env.timeout(1)

    assert runner(work()) is None

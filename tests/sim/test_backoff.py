"""Tests for the seeded jittered-exponential Backoff schedule."""

import pytest

from repro.sim import Backoff
from repro.sim.rand import RandomStream


def make(seed=1, **kwargs):
    return Backoff(RandomStream(seed, "test.backoff"), **kwargs)


class TestCeiling:
    def test_grows_geometrically(self):
        b = make(base=0.001, factor=2.0, cap=1.0)
        assert b.ceiling(0) == pytest.approx(0.001)
        assert b.ceiling(1) == pytest.approx(0.002)
        assert b.ceiling(3) == pytest.approx(0.008)

    def test_caps(self):
        b = make(base=0.001, factor=2.0, cap=0.004)
        assert b.ceiling(10) == pytest.approx(0.004)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            make().ceiling(-1)


class TestDelay:
    def test_no_jitter_is_deterministic_ceiling(self):
        b = make(base=0.001, jitter=False)
        assert b.delay(0) == pytest.approx(0.001)
        assert b.delay(1) == pytest.approx(0.002)

    def test_full_jitter_within_bounds(self):
        b = make(base=0.001, factor=2.0, cap=0.05)
        for attempt in range(8):
            d = b.delay(attempt)
            assert 0.0 <= d <= b.ceiling(attempt)

    def test_same_seed_same_schedule(self):
        a = make(seed=42)
        b = make(seed=42)
        assert [a.delay(i) for i in range(10)] == \
               [b.delay(i) for i in range(10)]

    def test_different_seeds_differ(self):
        a = [make(seed=1).delay(i) for i in range(10)]
        b = [make(seed=2).delay(i) for i in range(10)]
        assert a != b


class TestExhaustion:
    def test_exhausted_after_max_attempts(self):
        b = make(max_attempts=3)
        assert not b.exhausted(0)
        assert not b.exhausted(2)
        assert b.exhausted(3)
        assert b.exhausted(4)


class TestValidation:
    def test_bad_base(self):
        with pytest.raises(ValueError):
            make(base=0.0)

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            make(factor=0.5)

    def test_cap_below_base(self):
        with pytest.raises(ValueError):
            make(base=0.01, cap=0.001)

    def test_bad_max_attempts(self):
        with pytest.raises(ValueError):
            make(max_attempts=0)

"""Unit tests for the environment / scheduler."""

import pytest

from repro.sim import EmptySchedule, Environment


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=10.0)
    assert env.now == 10.0


def test_run_until_time_stops_clock(env):
    env.timeout(5)
    env.run(until=3)
    assert env.now == 3


def test_run_until_time_processes_earlier_events(env):
    hits = []
    t = env.timeout(1)
    t.callbacks.append(lambda e: hits.append(env.now))
    env.run(until=2)
    assert hits == [1]


def test_run_until_past_raises(env):
    env.timeout(5)
    env.run(until=3)
    with pytest.raises(ValueError):
        env.run(until=1)


def test_run_drains_queue(env):
    env.timeout(1)
    env.timeout(2)
    env.run()
    assert env.now == 2
    assert env.peek() == float("inf")


def test_step_empty_raises(env):
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_returns_next_event_time(env):
    env.timeout(4)
    env.timeout(2)
    assert env.peek() == 2


def test_events_at_same_time_fifo(env):
    order = []
    for name in "abc":
        t = env.timeout(1)
        t.callbacks.append(lambda e, n=name: order.append(n))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_event_returns_value(env):
    def work():
        yield env.timeout(2)
        return "value"

    process = env.process(work())
    assert env.run(until=process) == "value"
    assert env.now == 2


def test_run_until_event_raises_its_exception(env):
    def failing():
        yield env.timeout(1)
        raise KeyError("nope")

    process = env.process(failing())
    with pytest.raises(KeyError):
        env.run(until=process)


def test_run_until_already_processed_event(env):
    t = env.timeout(1, value="done")
    env.run()
    assert env.run(until=t) == "done"


def test_run_until_event_that_never_fires(env):
    stuck = env.event()
    env.timeout(1)
    with pytest.raises(RuntimeError, match="ran out of events"):
        env.run(until=stuck)


def test_negative_schedule_delay_rejected(env):
    event = env.event()
    with pytest.raises(ValueError):
        env.schedule(event, delay=-1)


def test_simulation_continues_after_partial_run(env):
    env.timeout(1)
    env.timeout(5)
    env.run(until=2)
    env.run()
    assert env.now == 5


def test_active_process_tracked(env):
    seen = []

    def work():
        seen.append(env.active_process)
        yield env.timeout(1)

    process = env.process(work())
    env.run()
    assert seen == [process]
    assert env.active_process is None

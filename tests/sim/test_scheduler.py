"""Unit tests for the environment / scheduler."""

import pytest

from repro.sim import EmptySchedule, Environment


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=10.0)
    assert env.now == 10.0


def test_run_until_time_stops_clock(env):
    env.timeout(5)
    env.run(until=3)
    assert env.now == 3


def test_run_until_time_processes_earlier_events(env):
    hits = []
    t = env.timeout(1)
    t.callbacks.append(lambda e: hits.append(env.now))
    env.run(until=2)
    assert hits == [1]


def test_run_until_past_raises(env):
    env.timeout(5)
    env.run(until=3)
    with pytest.raises(ValueError):
        env.run(until=1)


def test_run_drains_queue(env):
    env.timeout(1)
    env.timeout(2)
    env.run()
    assert env.now == 2
    assert env.peek() == float("inf")


def test_step_empty_raises(env):
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_returns_next_event_time(env):
    env.timeout(4)
    env.timeout(2)
    assert env.peek() == 2


def test_events_at_same_time_fifo(env):
    order = []
    for name in "abc":
        t = env.timeout(1)
        t.callbacks.append(lambda e, n=name: order.append(n))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_event_returns_value(env):
    def work():
        yield env.timeout(2)
        return "value"

    process = env.process(work())
    assert env.run(until=process) == "value"
    assert env.now == 2


def test_run_until_event_raises_its_exception(env):
    def failing():
        yield env.timeout(1)
        raise KeyError("nope")

    process = env.process(failing())
    with pytest.raises(KeyError):
        env.run(until=process)


def test_run_until_already_processed_event(env):
    t = env.timeout(1, value="done")
    env.run()
    assert env.run(until=t) == "done"


def test_run_until_event_that_never_fires(env):
    stuck = env.event()
    env.timeout(1)
    with pytest.raises(RuntimeError, match="ran out of events"):
        env.run(until=stuck)


def test_negative_schedule_delay_rejected(env):
    event = env.event()
    with pytest.raises(ValueError):
        env.schedule(event, delay=-1)


def test_simulation_continues_after_partial_run(env):
    env.timeout(1)
    env.timeout(5)
    env.run(until=2)
    env.run()
    assert env.now == 5


def test_active_process_tracked(env):
    seen = []

    def work():
        seen.append(env.active_process)
        yield env.timeout(1)

    process = env.process(work())
    env.run()
    assert seen == [process]
    assert env.active_process is None

# -- regression tests: `until` boundary semantics and queue interleaving --


def test_run_until_lands_exactly_on_stop_time(env):
    env.timeout(1)
    env.timeout(2)
    env.run(until=3.7)
    assert env.now == 3.7


def test_run_until_exact_when_queue_drains_early(env):
    # The queue empties at t=1 but the clock must still advance to `until`.
    env.timeout(1)
    env.run(until=7.5)
    assert env.now == 7.5
    assert env.peek() == float("inf")


def test_run_until_event_exactly_at_stop_time(env):
    hits = []
    t = env.timeout(3.0)
    t.callbacks.append(lambda e: hits.append(env.now))
    env.run(until=3.0)
    assert hits == [3.0]
    assert env.now == 3.0


def test_run_until_already_failed_processed_event_raises(env):
    event = env.event()
    event.defused = True  # nobody waits; suppress the unhandled-error check
    event.fail(ValueError("boom"))
    env.run()
    assert event.processed
    with pytest.raises(ValueError, match="boom"):
        env.run(until=event)


def test_run_until_event_that_fails_during_run_raises(env):
    event = env.event()
    event.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        env.run(until=event)


def test_out_of_order_delays_keep_time_order(env):
    # Decreasing delays exercise the heap fallback behind the monotone
    # tail deque; mixed same-time events exercise FIFO within a time.
    order = []
    for delay in (5, 3, 4, 3):
        t = env.timeout(delay)
        t.callbacks.append(lambda e, d=delay: order.append(d))
    env.run()
    assert order == [3, 3, 4, 5]


def test_zero_delay_and_delayed_events_interleave_in_time_order(env):
    order = []

    def worker():
        order.append(("start", env.now))
        yield env.timeout(0)
        order.append(("zero", env.now))
        yield env.timeout(2)
        order.append(("two", env.now))

    t = env.timeout(1)
    t.callbacks.append(lambda e: order.append(("one", env.now)))
    env.process(worker())
    env.run()
    assert order == [("start", 0), ("zero", 0), ("one", 1), ("two", 2)]


def test_events_processed_counter(env):
    for _ in range(3):
        env.timeout(1)
    env.run()
    # 3 timeouts (no process-bookkeeping events involved).
    assert env.events_processed == 3


class TestBatchedSameTimestampDrain:
    """run()'s batched drain of same-instant ready events must stay
    observationally identical to the one-at-a-time heap semantics."""

    def test_same_instant_storm_keeps_fifo_order(self, env):
        order = []
        for i in range(100):
            e = env.event()
            e.succeed()
            e.callbacks.append(lambda _e, i=i: order.append(i))
        env.run()
        assert order == list(range(100))

    def test_appends_during_drain_run_after_existing_entries(self, env):
        order = []

        def chain(e):
            order.append("first")
            nxt = env.event()
            nxt.succeed()
            nxt.callbacks.append(lambda _e: order.append("chained"))

        head = env.event()
        head.succeed()
        head.callbacks.append(chain)
        tail = env.event()
        tail.succeed()
        tail.callbacks.append(lambda _e: order.append("second"))
        env.run()
        assert order == ["first", "second", "chained"]

    def test_urgent_interrupt_preempts_remaining_ready_entries(self, env):
        """An interrupt raised mid-storm schedules an URGENT event on
        the heap; the batched drain must bail out and run it before the
        rest of the same-instant ready batch."""
        from repro.sim import Interrupt

        order = []

        def victim():
            try:
                yield env.timeout(100)
            except Interrupt:
                order.append("interrupted")

        proc = env.process(victim())

        def storm():
            yield env.timeout(1)  # victim is parked by now
            a = env.event()
            a.succeed()
            a.callbacks.append(
                lambda _e: (order.append("a"), proc.interrupt())
            )
            b = env.event()
            b.succeed()
            b.callbacks.append(lambda _e: order.append("b"))

        env.process(storm())
        env.run()
        assert order == ["a", "interrupted", "b"]

    def test_batched_drain_matches_step_semantics(self, env):
        """Same workload through run() (batched) and step() (per-event)
        produces the same observable order."""

        def workload(e, log):
            for i in range(5):
                ev = e.event()
                ev.succeed()
                ev.callbacks.append(lambda _x, i=i: log.append(("r", i)))
            t = e.timeout(0)
            t.callbacks.append(lambda _x: log.append(("t", e.now)))

        run_log = []
        workload(env, run_log)
        env.run()

        from repro.sim import Environment

        stepped = Environment()
        step_log = []
        workload(stepped, step_log)
        while stepped.peek() != float("inf"):
            stepped.step()
        assert run_log == step_log

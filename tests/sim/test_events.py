"""Unit tests for the event primitives."""

import pytest

from repro.sim import Environment, Event, EventAlreadyTriggered, Timeout
from repro.sim.events import AllOf, AnyOf


class TestEvent:
    def test_starts_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_sets_value(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_twice_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(EventAlreadyTriggered):
            event.succeed()

    def test_fail_then_succeed_raises(self, env):
        event = env.event()
        event.fail(RuntimeError("boom"))
        event.defused = True
        with pytest.raises(EventAlreadyTriggered):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_value_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(RuntimeError):
            __ = event.value
        with pytest.raises(RuntimeError):
            __ = event.ok

    def test_unhandled_failure_surfaces_in_run(self, env):
        event = env.event()
        event.fail(ValueError("nobody caught me"))
        with pytest.raises(ValueError, match="nobody caught me"):
            env.run()

    def test_defused_failure_passes_silently(self, env):
        event = env.event()
        event.fail(ValueError("defused"))
        event.defused = True
        env.run()  # must not raise

    def test_callbacks_run_on_processing(self, env):
        event = env.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("hello")
        env.run()
        assert seen == ["hello"]
        assert event.processed


class TestTimeout:
    def test_fires_at_the_right_time(self, env):
        timeout = env.timeout(2.5, value="done")
        env.run()
        assert env.now == 2.5
        assert timeout.value == "done"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_zero_delay_ok(self, env):
        env.timeout(0)
        env.run()
        assert env.now == 0

    def test_cannot_be_triggered_manually(self, env):
        timeout = env.timeout(1)
        with pytest.raises(RuntimeError):
            timeout.succeed()
        with pytest.raises(RuntimeError):
            timeout.fail(RuntimeError())

    def test_delay_property(self, env):
        assert env.timeout(3.25).delay == 3.25


class TestConditions:
    def test_all_of_waits_for_every_event(self, env):
        first, second = env.timeout(1, "a"), env.timeout(2, "b")
        condition = env.all_of([first, second])
        env.run(until=condition)
        assert env.now == 2
        assert set(condition.value.values()) == {"a", "b"}

    def test_any_of_fires_on_first(self, env):
        slow, fast = env.timeout(10, "slow"), env.timeout(1, "fast")
        condition = env.any_of([slow, fast])
        value = env.run(until=condition)
        assert env.now == 1
        assert list(value.values()) == ["fast"]

    def test_empty_all_of_is_immediate(self, env):
        condition = env.all_of([])
        assert condition.triggered

    def test_empty_any_of_is_immediate(self, env):
        condition = env.any_of([])
        assert condition.triggered

    def test_failed_child_fails_condition(self, env):
        good = env.timeout(1)
        bad = env.event()
        condition = env.all_of([good, bad])
        bad.fail(RuntimeError("child died"))
        with pytest.raises(RuntimeError, match="child died"):
            env.run(until=condition)

    def test_condition_over_processed_events(self, env):
        done = env.timeout(1, "x")
        env.run()
        condition = AllOf(env, [done])
        env.run()
        assert condition.value[done] == "x"

    def test_mixed_environments_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            env.all_of([env.timeout(1), other.timeout(1)])

"""Property-based tests on data-plane invariants (hypothesis).

For every mechanism, a random sequence of message sizes must arrive
exactly once, in order, with bytes conserved and time strictly
advancing — the invariants every experiment in the repo rests on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import ContainerSpec, quickstart_cluster
from repro.baselines import OverlayModeNetwork
from repro.core import PolicyConfig
from repro.transports import DpdkEngine


def _drive(channel, env, sizes):
    """Send ``sizes`` through channel.a, receive them at channel.b."""
    received = []

    def sender():
        for index, size in enumerate(sizes):
            yield from channel.a.send(size, payload=index)

    def receiver():
        for _ in sizes:
            message = yield from channel.b.recv()
            received.append((message.payload, message.size_bytes,
                             message.latency))

    env.process(sender())
    done = env.process(receiver())
    env.run(until=done)
    return received


def _check(received, sizes):
    assert [index for index, __, __ in received] == list(range(len(sizes)))
    assert [size for __, size, __ in received] == list(sizes)
    assert all(latency > 0 for __, __, latency in received)


_SIZES = st.lists(
    st.integers(min_value=1, max_value=2 * 1024 * 1024),
    min_size=1, max_size=25,
)


@given(_SIZES)
@settings(max_examples=20, deadline=None)
def test_freeflow_shm_delivers_exactly_once_in_order(sizes):
    env, cluster, network = quickstart_cluster(hosts=1)
    a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
    b = cluster.submit(ContainerSpec("b", pinned_host="host0"))
    network.attach(a)
    network.attach(b)

    def wire():
        connection = yield from network.connect_containers("a", "b")
        return connection

    connection = env.run(until=env.process(wire()))
    _check(_drive(connection, env, sizes), sizes)


@given(_SIZES)
@settings(max_examples=20, deadline=None)
def test_freeflow_rdma_delivers_exactly_once_in_order(sizes):
    env, cluster, network = quickstart_cluster(hosts=2)
    a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
    b = cluster.submit(ContainerSpec("b", pinned_host="host1"))
    network.attach(a)
    network.attach(b)

    def wire():
        connection = yield from network.connect_containers("a", "b")
        return connection

    connection = env.run(until=env.process(wire()))
    _check(_drive(connection, env, sizes), sizes)


@given(_SIZES)
@settings(max_examples=15, deadline=None)
def test_freeflow_dpdk_delivers_exactly_once_in_order(sizes):
    DpdkEngine._BY_HOST.clear()
    env, cluster, network = quickstart_cluster(
        hosts=2, policy_config=PolicyConfig(allow_rdma=False)
    )
    a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
    b = cluster.submit(ContainerSpec("b", pinned_host="host1"))
    network.attach(a)
    network.attach(b)

    def wire():
        connection = yield from network.connect_containers("a", "b")
        return connection

    connection = env.run(until=env.process(wire()))
    assert connection.mechanism.value == "dpdk"
    _check(_drive(connection, env, sizes), sizes)


@given(_SIZES)
@settings(max_examples=15, deadline=None)
def test_overlay_delivers_exactly_once_in_order(sizes):
    env, cluster, network = quickstart_cluster(hosts=2)
    a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
    b = cluster.submit(ContainerSpec("b", pinned_host="host1"))
    overlay = OverlayModeNetwork(env)
    channel = overlay.connect(a, b)
    _check(_drive(channel, env, sizes), sizes)


@given(st.lists(st.integers(min_value=1, max_value=512 * 1024),
                min_size=1, max_size=15),
       st.integers(min_value=0, max_value=2**31))
@settings(max_examples=15, deadline=None)
def test_simulation_is_deterministic(sizes, seed):
    """Two identical runs produce byte-identical delivery timestamps."""

    def run_once():
        env, cluster, network = quickstart_cluster(hosts=2)
        a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
        b = cluster.submit(ContainerSpec("b", pinned_host="host1"))
        network.attach(a)
        network.attach(b)

        def wire():
            connection = yield from network.connect_containers("a", "b")
            return connection

        connection = env.run(until=env.process(wire()))
        received = _drive(connection, env, sizes)
        return [(idx, size, lat) for idx, size, lat in received]

    assert run_once() == run_once()


@given(st.lists(st.integers(min_value=1, max_value=1024 * 1024),
                min_size=2, max_size=12))
@settings(max_examples=15, deadline=None)
def test_socket_stream_conserves_bytes(sizes):
    """Random writes through the socket layer: total bytes conserved."""
    from repro.core import SocketLayer

    env, cluster, network = quickstart_cluster(hosts=2)
    a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
    b = cluster.submit(ContainerSpec("b", pinned_host="host1"))
    network.attach(a)
    network.attach(b)
    layer = SocketLayer(network)
    listener = layer.listen(b, 9999)
    total = sum(sizes)
    got = {}

    def server():
        sock = yield from listener.accept()
        n, __ = yield from sock.recv_exactly(total)
        eof, __ = yield from sock.recv()
        got["n"], got["eof"] = n, eof

    env.process(server())

    def client():
        sock = layer.socket(a)
        yield from sock.connect(b.ip, 9999)
        for size in sizes:
            yield from sock.send(size)
        yield from sock.shutdown()

    env.run(until=env.process(client()))
    env.run(until=env.now + 0.2)
    assert got["n"] == total
    assert got["eof"] == 0

"""Harness integration: result breakdowns + strict in-flight accounting."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.hardware import Fabric, Host
from repro.metrics import _pair_in_flight, run_pingpong, run_stream
from repro.sim import Environment
from repro.transports import ShmChannel


def _shm_channel(env):
    return ShmChannel(Host(env, "h0", fabric=Fabric(env)))


def test_pingpong_result_carries_breakdown():
    env = Environment()
    channel = _shm_channel(env)
    with telemetry.session():
        result = run_pingpong(env, channel.a, channel.b,
                              rounds=10, warmup_rounds=2)
    assert result.breakdown is not None
    # Scoped to measured rounds: 10 each way, warmup excluded.
    assert result.breakdown["count"] == 20
    assert result.breakdown["segments"]


def test_stream_result_carries_breakdown():
    env = Environment()
    channel = _shm_channel(env)
    hosts = [channel.a._out.host] if hasattr(channel.a._out, "host") else []
    with telemetry.session():
        result = run_stream(env, [(channel.a, channel.b)],
                            duration_s=0.002, hosts=hosts)
    assert result.breakdown is not None
    assert result.breakdown["count"] > 0
    assert result.gbps > 0


def test_results_have_no_breakdown_when_disabled():
    env = Environment()
    channel = _shm_channel(env)
    result = run_pingpong(env, channel.a, channel.b,
                          rounds=5, warmup_rounds=0)
    assert result.breakdown is None


# -- satellite: _pair_in_flight must reject unknown endpoint shapes ---------


def test_pair_in_flight_counts_lane_endpoints():
    env = Environment()
    channel = _shm_channel(env)
    assert _pair_in_flight(channel.a, channel.b) == 0


def test_pair_in_flight_rejects_unknown_endpoints():
    class Mystery:
        pass

    with pytest.raises(TypeError, match="cannot count in-flight"):
        _pair_in_flight(Mystery(), Mystery())


def test_pair_in_flight_rejects_partial_stats():
    class HalfStats:
        messages_sent = 3  # no messages_delivered

    class HalfLaneEnd:
        class _OutLane:
            stats = HalfStats()

        _out = _OutLane()

    with pytest.raises(TypeError, match="cannot count in-flight"):
        _pair_in_flight(HalfLaneEnd(), HalfLaneEnd())

"""MetricsRegistry semantics: metric kinds, registration hooks, queries."""

from __future__ import annotations

import pytest

from repro import ContainerSpec, quickstart_cluster, telemetry
from repro.hardware import Fabric, Host
from repro.metrics import run_pingpong
from repro.sim import Environment
from repro.telemetry import MetricsRegistry
from repro.telemetry import registry as registry_module
from repro.transports import ShmChannel


# -- metric kinds -----------------------------------------------------------


def test_counter_is_monotonic():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == pytest.approx(3.5)
    with pytest.raises(ValueError):
        counter.inc(-1.0)


def test_get_or_create_returns_same_metric():
    registry = MetricsRegistry()
    assert registry.counter("c") is registry.counter("c")
    assert registry.gauge("g") is registry.gauge("g")
    assert registry.histogram("h") is registry.histogram("h")


def test_kind_mismatch_raises_type_error():
    registry = MetricsRegistry()
    registry.counter("m")
    with pytest.raises(TypeError):
        registry.gauge("m")
    with pytest.raises(TypeError):
        registry.histogram("m")


def test_callback_gauge_rejects_set():
    registry = MetricsRegistry()
    gauge = registry.gauge("g", fn=lambda: 42.0)
    assert gauge.value == 42.0
    with pytest.raises(ValueError):
        gauge.set(1.0)


def test_plain_gauge_set():
    registry = MetricsRegistry()
    gauge = registry.gauge("g")
    gauge.set(7)
    assert gauge.value == 7.0


def test_histogram_summary():
    registry = MetricsRegistry()
    histogram = registry.histogram("h")
    assert histogram.summary() == {"count": 0.0}
    for sample in (1.0, 2.0, 3.0):
        histogram.observe(sample)
    summary = histogram.summary()
    assert summary["count"] == 3
    assert summary["mean"] == pytest.approx(2.0)


def test_query_and_snapshot_filter_by_prefix():
    registry = MetricsRegistry()
    registry.counter("repro.a.x").inc()
    registry.counter("repro.b.y").inc(2)
    assert set(registry.query("repro.a.")) == {"repro.a.x"}
    assert registry.snapshot()["repro.b.y"] == 2.0
    assert registry.names() == ["repro.a.x", "repro.b.y"]


# -- push helpers gate on ACTIVE --------------------------------------------


def test_push_helpers_noop_when_disabled():
    assert registry_module.ACTIVE is None
    registry_module.counter_inc("repro.never")  # must not raise or record
    registry_module.histogram_observe("repro.never", 1.0)
    with telemetry.session() as handle:
        registry_module.counter_inc("repro.now", 2.0)
        registry_module.histogram_observe("repro.lat", 1e-6)
        assert handle.registry.snapshot()["repro.now"] == 2.0
    assert registry_module.ACTIVE is None


# -- pull-style registration from the live stack ----------------------------


def test_lanes_register_and_aggregate_under_session():
    env = Environment()
    host = Host(env, "h0", fabric=Fabric(env))
    with telemetry.session() as handle:
        channel = ShmChannel(host)
        run_pingpong(env, channel.a, channel.b, rounds=10, warmup_rounds=0)
        snapshot = handle.registry.snapshot()
    assert snapshot["repro.lane.shm.lanes"] == 2.0  # duplex pair
    # 10 rounds = 10 messages each way, one lane per direction.
    assert snapshot["repro.lane.shm.messages_delivered"] == 20.0
    latency = snapshot["repro.lane.shm.latency_s"]
    assert latency["count"] == 20
    assert latency["mean"] > 0


def test_bench_metrics_recorded_by_harness():
    env = Environment()
    host = Host(env, "h0", fabric=Fabric(env))
    with telemetry.session() as handle:
        channel = ShmChannel(host)
        run_pingpong(env, channel.a, channel.b, rounds=10, warmup_rounds=0)
        snapshot = handle.registry.snapshot()
    assert snapshot["repro.bench.pingpong.runs"] == 1.0
    assert snapshot["repro.bench.pingpong.latency_s"]["count"] == 10


def test_hosts_and_orchestrator_register_under_session():
    with telemetry.session() as handle:
        env, cluster, network = quickstart_cluster(hosts=2)
        a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
        b = cluster.submit(ContainerSpec("b", pinned_host="host1"))
        network.attach(a)
        network.attach(b)

        def wire():
            connection = yield from network.connect_containers("a", "b")
            return connection

        env.run(until=env.process(wire()))
        names = handle.registry.names()
        snapshot = handle.registry.snapshot()
    assert "repro.host.host0.cpu_pct" in names
    assert "repro.host.host1.nic_engine_util" in names
    assert snapshot["repro.orchestrator.connections"] == 1.0
    assert snapshot["repro.orchestrator.queries_served"] >= 1.0

"""Control-plane event log: ring semantics + emission from the stack."""

from __future__ import annotations

import pytest

from repro import ContainerSpec, quickstart_cluster, telemetry
from repro.sim import Environment
from repro.telemetry import EventLog
from repro.telemetry import events as events_module


class _FakeEnv:
    def __init__(self, now: float) -> None:
        self.now = now


# -- ring semantics ---------------------------------------------------------


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EventLog(capacity=0)


def test_eviction_keeps_newest_and_counts():
    log = EventLog(capacity=3)
    for i in range(5):
        log.emit(float(i), "tick", index=i)
    assert len(log) == 3
    assert log.evicted == 2
    assert [event.fields["index"] for event in log.events] == [2, 3, 4]


def test_of_kind_and_kinds():
    log = EventLog()
    log.emit(0.0, "a")
    log.emit(1.0, "b", x=1)
    log.emit(2.0, "a")
    assert log.kinds() == {"a": 2, "b": 1}
    assert [event.time_s for event in log.of_kind("a")] == [0.0, 2.0]


def test_as_record_is_flat_and_sorted():
    log = EventLog()
    event = log.emit(1.5, "policy.decision", zeta="z", alpha="a")
    assert list(event.as_record()) == ["time_s", "kind", "alpha", "zeta"]


def test_module_emit_noops_when_disabled():
    assert events_module.ACTIVE is None
    events_module.emit(_FakeEnv(1.0), "ignored", x=1)  # must not raise
    with telemetry.session() as handle:
        events_module.emit(_FakeEnv(2.0), "seen", x=1)
        assert handle.events.kinds() == {"seen": 1}
    assert events_module.ACTIVE is None


# -- emission from the real control plane -----------------------------------


def test_cluster_and_network_emit_lifecycle_events():
    with telemetry.session() as handle:
        env, cluster, network = quickstart_cluster(hosts=2)
        a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
        b = cluster.submit(ContainerSpec("b", pinned_host="host1"))
        network.attach(a)
        network.attach(b)

        def wire():
            connection = yield from network.connect_containers("a", "b")
            return connection

        env.run(until=env.process(wire()))
        kinds = handle.events.kinds()
    assert kinds["container.submit"] == 2
    assert kinds["container.register"] == 2
    assert kinds["container.attach"] == 2
    assert kinds["policy.decision"] >= 1
    assert kinds["flow.connect"] == 1
    decision = handle.events.of_kind("policy.decision")[0]
    assert decision.fields["mechanism"] == "rdma"  # cross-host pair
    assert {"src", "dst", "reason"} <= set(decision.fields)


def test_events_are_stamped_with_sim_time():
    with telemetry.session() as handle:
        env, cluster, network = quickstart_cluster(hosts=1)
        a = cluster.submit(ContainerSpec("a", pinned_host="host0"))
        b = cluster.submit(ContainerSpec("b", pinned_host="host0"))
        network.attach(a)
        network.attach(b)

        def wire():
            connection = yield from network.connect_containers("a", "b")
            return connection

        env.run(until=env.process(wire()))
        times = [event.time_s for event in handle.events.events]
        assert times == sorted(times)
        # connect_containers pays the orchestrator RPC latency, so the
        # flow.connect event lands strictly after t=0.
        assert handle.events.of_kind("flow.connect")[0].time_s > 0.0

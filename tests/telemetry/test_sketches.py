"""Space-Saving sketch: the Metwally et al. guarantees, checked exactly.

The property test drives a Zipf-distributed weighted stream through a
small sketch next to an exact counter and verifies the three paper
bounds: estimates never under-count, the overestimate never exceeds
``total / capacity``, and every true heavy hitter (weight above that
bound) is tracked.
"""

from __future__ import annotations

import pytest

from repro.sim.rand import RandomStream
from repro.telemetry.sketches import SpaceSaving


def zipf_stream(seed: int, draws: int, keys: int, skew: float = 1.1):
    """Deterministic (key, weight) stream with a heavy-tailed key split."""
    rng = RandomStream(seed, name="sketch.zipf")
    for _ in range(draws):
        index = rng.zipf_index(keys, skew=skew)
        yield f"flow{index}", float(rng.randint(512, 4096))


def test_epsilon_bound_property_on_zipf_workload():
    sketch = SpaceSaving(capacity=64)
    exact: dict[str, float] = {}
    for key, weight in zipf_stream(seed=11, draws=20000, keys=2000):
        sketch.update(key, weight)
        exact[key] = exact.get(key, 0.0) + weight

    total = sum(exact.values())
    assert sketch.total == pytest.approx(total)
    bound = sketch.error_bound()
    assert bound == pytest.approx(total / 64)

    for key, estimate, max_error in sketch.top():
        true = exact.get(key, 0.0)
        # Never an under-estimate, and the overestimate is within both
        # the per-key error and the global bound.
        assert estimate >= true - 1e-9
        assert estimate - true <= max_error + 1e-9
        assert max_error <= bound + 1e-9

    # Guaranteed tracking: every key whose true weight exceeds
    # total/capacity must be in the sketch.
    for key, true in exact.items():
        if true > bound:
            assert key in sketch


def test_top_ranking_matches_ground_truth_on_skewed_stream():
    # Strong skew + capacity well above the distinct heavy keys: the
    # sketch's top-5 must identify the true top-5 in order.
    sketch = SpaceSaving(capacity=32)
    exact: dict[str, float] = {}
    for key, weight in zipf_stream(seed=3, draws=30000, keys=4000,
                                   skew=1.6):
        sketch.update(key, weight)
        exact[key] = exact.get(key, 0.0) + weight
    want = [k for k, _ in sorted(exact.items(),
                                 key=lambda kv: (-kv[1], kv[0]))[:5]]
    got = [key for key, _, _ in sketch.top(5)]
    assert got == want


def test_same_seed_same_sketch():
    def build():
        sketch = SpaceSaving(capacity=16)
        for key, weight in zipf_stream(seed=5, draws=5000, keys=500):
            sketch.update(key, weight)
        return sketch.top()

    assert build() == build()


def test_eviction_takes_over_minimum_with_floor_error():
    sketch = SpaceSaving(capacity=2)
    sketch.update("a", 10.0)
    sketch.update("b", 3.0)
    sketch.update("c", 1.0)  # evicts b (min count), inherits its floor
    assert "b" not in sketch
    assert sketch.estimate("c") == 4.0
    assert sketch.error_of("c") == 3.0
    assert sketch.evictions == 1
    assert len(sketch) == 2


def test_eviction_tie_breaks_deterministically():
    sketch = SpaceSaving(capacity=2)
    sketch.update("x", 1.0)
    sketch.update("y", 1.0)
    sketch.update("z", 1.0)  # tie on count: victim is min(str(key))
    assert "x" not in sketch
    assert "y" in sketch and "z" in sketch


def test_merge_composes_bounds():
    left = SpaceSaving(capacity=8)
    right = SpaceSaving(capacity=8)
    for i in range(6):
        left.update(f"k{i}", float(i + 1))
        right.update(f"k{i}", float(10 - i))
    total_before = left.total + right.total
    left.merge(right)
    assert left.total == pytest.approx(total_before)
    assert left.estimate("k0") == pytest.approx(1.0 + 10.0)
    assert left.state_size() <= 8


def test_rejects_bad_capacity_and_negative_weight():
    with pytest.raises(ValueError):
        SpaceSaving(0)
    sketch = SpaceSaving(4)
    with pytest.raises(ValueError):
        sketch.update("k", -1.0)


def test_state_size_bounded_by_capacity():
    sketch = SpaceSaving(capacity=16)
    for i in range(10000):
        sketch.update(f"key{i}")
    assert sketch.state_size() == 16
    assert sketch.updates == 10000

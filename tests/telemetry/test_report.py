"""End-to-end smoke for the ``repro report`` / ``repro top`` CLIs.

These drive the real subprocess entry points: the report artifact must
be valid JSON-lines, byte-identical across same-seed runs (profiler
armed — its deterministic records exclude wall-clock), and pass its own
``--check`` against exact ground truth; the live top view must render
frames against a chaos scenario without a terminal.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SMALL = ["--hosts", "4", "--flows", "40", "--seed", "7",
         "--sample-rate", "1.0"]


def run_cli(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=120,
    )


def test_report_small_scale_passes_its_own_check(tmp_path):
    out = tmp_path / "report.jsonl"
    proc = run_cli("report", *SMALL, "--check", "--out", str(out))
    assert proc.returncode == 0, proc.stderr
    assert "matches exact ground truth" in proc.stderr

    records = [json.loads(line) for line in out.read_text().splitlines()]
    kinds = {record.get("record") for record in records}
    assert {"rollup.header", "rollup", "topk", "flows.header", "flow",
            "flows.transitions", "profile"} <= kinds
    assert any("event" in record for record in records)
    assert any("metric" in record for record in records)
    flows = [r for r in records if r.get("record") == "flow"]
    assert flows and all(r["payload_bytes"] > 0 and r["messages"] > 0
                         for r in flows)
    topk = [r for r in records if r.get("record") == "topk"]
    assert {r["by"] for r in topk} == {"flow", "src", "dst"}
    for record in topk:
        assert record["error_bound_bytes"] >= 0.0
        assert all(entry["bytes"] > 0 for entry in record["top"])


def test_report_same_seed_is_byte_identical_with_profiler(tmp_path):
    outs = []
    for name in ("a.jsonl", "b.jsonl"):
        out = tmp_path / name
        proc = run_cli("report", *SMALL, "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        outs.append(out.read_bytes())
    assert outs[0] == outs[1]
    records = [json.loads(line) for line in outs[0].decode().splitlines()]
    assert any(r.get("record") == "profile" for r in records)


def test_report_no_profile_omits_profiler_records(tmp_path):
    out = tmp_path / "report.jsonl"
    proc = run_cli("report", *SMALL, "--no-profile", "--out", str(out))
    assert proc.returncode == 0, proc.stderr
    records = [json.loads(line) for line in out.read_text().splitlines()]
    assert not any(r.get("record") == "profile" for r in records)


def test_top_renders_frames_against_chaos_scenario():
    proc = run_cli("top", "--no-clear", "--scenario", "nic-loss-midflow")
    assert proc.returncode == 0, proc.stderr
    assert "top flows" in proc.stdout
    assert "link_util" in proc.stdout
    assert "frames" in proc.stdout.splitlines()[-1]

"""Tracer unit + integration tests: spans, sampling, scheduler ordering."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.hardware import Fabric, Host
from repro.metrics import run_pingpong
from repro.sim import Environment
from repro.telemetry import MessageTrace, Tracer
from repro.telemetry import tracer as tracer_module
from repro.transports import RdmaChannel, ShmChannel, TcpFallbackChannel


# -- MessageTrace.breakdown -------------------------------------------------


def test_breakdown_attributes_gaps_to_wait():
    trace = MessageTrace("f", "shm", start_s=0.0)
    trace.add("queue", 0.0, 1.0)
    trace.add("copy", 3.0, 4.0)
    trace.end_s = 6.0
    out = trace.breakdown()
    assert out == {"queue": 1.0, "copy": 1.0, "wait": 4.0}
    assert sum(out.values()) == pytest.approx(trace.total_s)


def test_breakdown_clips_overlapping_segments():
    trace = MessageTrace("f", "shm", start_s=0.0)
    trace.add("queue", 0.0, 2.0)
    trace.add("copy", 1.0, 3.0)  # overlaps [1, 2] with queue
    trace.end_s = 3.0
    out = trace.breakdown()
    assert out == {"queue": 2.0, "copy": 1.0}
    assert sum(out.values()) == pytest.approx(trace.total_s)


def test_breakdown_merges_repeated_segment_names():
    trace = MessageTrace("f", "tcp", start_s=0.0)
    trace.add("kernel", 0.0, 1.0)
    trace.add("wire", 1.0, 2.0)
    trace.add("kernel", 2.0, 4.0)
    trace.end_s = 4.0
    assert trace.breakdown() == {"kernel": 3.0, "wire": 1.0}


def test_open_trace_is_not_closed():
    trace = MessageTrace("f", "shm", start_s=1.0)
    assert not trace.closed
    trace.end_s = 2.0
    assert trace.closed
    assert trace.total_s == pytest.approx(1.0)


# -- Tracer sampling --------------------------------------------------------


def test_sample_rate_validation():
    with pytest.raises(ValueError):
        Tracer(sample_rate=1.5)
    with pytest.raises(ValueError):
        Tracer(sample_rate=-0.1)
    with pytest.raises(ValueError):
        Tracer(max_traces_per_flow=0)


def test_rate_zero_traces_nothing_rate_one_traces_everything():
    off = Tracer(sample_rate=0.0)
    on = Tracer(sample_rate=1.0)
    for _ in range(50):
        assert off.begin("f", "shm", 0.0) is None
        assert on.begin("f", "shm", 0.0) is not None
    assert off.offered == on.offered == 50


def _decisions(tracer: Tracer, flow: str, n: int) -> list[bool]:
    return [tracer.begin(flow, "shm", 0.0) is not None for _ in range(n)]


def test_sampling_is_deterministic_given_seed():
    first = _decisions(Tracer(sample_rate=0.3, seed=7), "flow-a", 200)
    second = _decisions(Tracer(sample_rate=0.3, seed=7), "flow-a", 200)
    assert first == second
    assert any(first) and not all(first)


def test_sampling_differs_across_seeds():
    a = _decisions(Tracer(sample_rate=0.3, seed=7), "flow-a", 200)
    b = _decisions(Tracer(sample_rate=0.3, seed=8), "flow-a", 200)
    assert a != b


def test_per_flow_sampling_is_independent_of_interleaving():
    solo = _decisions(Tracer(sample_rate=0.3, seed=7), "flow-a", 100)
    mixed_tracer = Tracer(sample_rate=0.3, seed=7)
    mixed = []
    for i in range(100):
        mixed.append(mixed_tracer.begin("flow-a", "shm", 0.0) is not None)
        mixed_tracer.begin(f"noise-{i % 5}", "shm", 0.0)
    assert solo == mixed


def test_per_flow_cap_counts_drops():
    tracer = Tracer(sample_rate=1.0, max_traces_per_flow=3)
    for i in range(5):
        trace = tracer.begin("f", "shm", float(i))
        if trace is not None:
            tracer.finish(trace, float(i) + 0.5)
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert tracer.counts["f"] == 3


def test_finish_is_idempotent():
    tracer = Tracer()
    trace = tracer.begin("f", "shm", 0.0)
    tracer.finish(trace, 1.0)
    tracer.finish(trace, 99.0)  # second close must not re-store or re-stamp
    assert len(tracer) == 1
    assert trace.end_s == 1.0


def test_breakdown_start_scopes_to_new_traces():
    tracer = Tracer()
    old = tracer.begin("f", "shm", 0.0)
    tracer.finish(old, 1.0)
    mark = len(tracer)
    new = tracer.begin("f", "shm", 10.0)
    tracer.finish(new, 12.0)
    scoped = tracer.breakdown(start=mark)
    assert scoped["count"] == 1
    assert scoped["mean_total_s"] == pytest.approx(2.0)


# -- integration: spans recorded under the real scheduler -------------------


def _traced_pingpong(make_channel, rounds=30):
    env = Environment()
    channel = make_channel(env)
    with telemetry.session(sample_rate=1.0) as handle:
        result = run_pingpong(env, channel.a, channel.b,
                              rounds=rounds, warmup_rounds=0)
    return handle, result


def _mk_shm(env):
    return ShmChannel(Host(env, "h0", fabric=Fabric(env)))


def _mk_rdma(env):
    fabric = Fabric(env)
    return RdmaChannel(Host(env, "a", fabric=fabric),
                       Host(env, "b", fabric=fabric))


def _mk_tcp(env):
    fabric = Fabric(env)
    return TcpFallbackChannel(Host(env, "a", fabric=fabric),
                              Host(env, "b", fabric=fabric))


@pytest.mark.parametrize("make_channel", [_mk_shm, _mk_rdma, _mk_tcp],
                         ids=["shm", "rdma", "tcp"])
def test_segments_are_time_ordered_and_sum_to_total(make_channel):
    handle, _ = _traced_pingpong(make_channel)
    assert handle.tracer.traces
    for trace in handle.tracer.traces:
        assert trace.closed
        starts = [start for _, start, _ in trace.segments]
        assert starts == sorted(starts)
        for name, start, end in trace.segments:
            assert trace.start_s <= start <= end <= trace.end_s
            assert name in telemetry.SEGMENT_ORDER
        assert sum(trace.breakdown().values()) == pytest.approx(
            trace.total_s, rel=1e-9, abs=1e-15
        )


@pytest.mark.parametrize("make_channel", [_mk_shm, _mk_rdma, _mk_tcp],
                         ids=["shm", "rdma", "tcp"])
def test_trace_total_matches_harness_latency(make_channel):
    """The demo's acceptance criterion: trace means = measured means (<1%)."""
    handle, result = _traced_pingpong(make_channel)
    aggregate = handle.tracer.breakdown()
    measured = result.latencies.mean()
    assert aggregate["mean_total_s"] == pytest.approx(measured, rel=0.01)
    # ...and the segment means sum to the aggregate total exactly.
    assert sum(aggregate["segments"].values()) == pytest.approx(
        aggregate["mean_total_s"], rel=1e-9
    )


def test_disabled_tracer_records_nothing():
    env = Environment()
    channel = _mk_shm(env)
    assert tracer_module.ACTIVE is None
    result = run_pingpong(env, channel.a, channel.b,
                          rounds=10, warmup_rounds=0)
    assert result.breakdown is None


def test_session_restores_previous_state():
    assert tracer_module.ACTIVE is None
    with telemetry.session() as outer:
        assert tracer_module.ACTIVE is outer.tracer
        with telemetry.session() as inner:
            assert tracer_module.ACTIVE is inner.tracer
        assert tracer_module.ACTIVE is outer.tracer
    assert tracer_module.ACTIVE is None

"""Flight recorder: rollups, flow records, profiler — unit + golden.

The golden test drives the recorder with a synthetic, fully
deterministic delivery feed (no process-global lane ids involved) and
compares the JSON-lines artifact byte-for-byte against
``golden_flightrecord.jsonl``.  Regenerate after an intentional format
change with::

    PYTHONPATH=src python tests/telemetry/test_flightrecorder.py --regenerate
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import telemetry
from repro.sim import Environment
from repro.telemetry import export
from repro.telemetry import flowrecords as flowrecords_module
from repro.telemetry import profiler as profiler_module
from repro.telemetry.flowrecords import FlowRecorder, _parse_label
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.timeseries import RollupRecorder

GOLDEN = Path(__file__).with_name("golden_flightrecord.jsonl")


# -- synthetic deterministic feed -------------------------------------------


def golden_records() -> list[dict]:
    """Rollup + top-k + flow records from a fixed synthetic feed."""
    registry = MetricsRegistry()
    counter = registry.counter("repro.telemetry.test_deliveries")
    rollups = RollupRecorder(registry, interval_s=1e-3, retention=8)
    recorder = FlowRecorder(seed=7, sample_rate=1.0, top_k=8,
                            max_records=16, rollup=rollups)
    feed = [
        ("f1:web->db", 8192), ("f2:web->cache", 4096),
        ("f1:web->db", 8192), ("f3:worker->db", 1024),
        ("shm/1", 512), ("f1:web->db", 8192), ("f2:web->cache", 4096),
        ("tcp-host/2", 256), ("f3:worker->db", 1024),
    ]
    for index, (label, nbytes) in enumerate(feed):
        counter.inc()
        recorder.on_deliver(label, nbytes, now=index * 0.4e-3)
    recorder.on_transition("f1:web->db", "resolving", "active", 1e-3)
    recorder.on_transition("f1:web->db", "active", "closed", 3e-3)
    recorder.on_verbs("write", 8192)
    recorder.on_verbs("write", 8192)
    recorder.on_verbs("send", 1024)
    rollups.flush(4e-3)
    return (export.rollup_records(rollups)
            + export.topk_records(recorder, n=5)
            + export.flow_records(recorder))


def test_golden_flightrecord_jsonl_is_byte_stable():
    got = export.jsonl(golden_records()) + "\n"
    assert GOLDEN.exists(), (
        f"{GOLDEN} missing — run this module with --regenerate"
    )
    assert got == GOLDEN.read_text()


def test_golden_feed_is_reproducible():
    assert golden_records() == golden_records()


# -- flow recorder units -----------------------------------------------------


def test_parse_label_variants():
    assert _parse_label("f3:web->db") == ("web", "db")
    assert _parse_label("web->db") == ("web", "db")
    assert _parse_label("shm/7") == (None, None)
    assert _parse_label("tcp-host/2") == (None, None)
    assert _parse_label("f9:->") == (None, None)


def test_sampling_is_deterministic_per_seed():
    a = FlowRecorder(seed=42, sample_rate=0.3)
    b = FlowRecorder(seed=42, sample_rate=0.3)
    labels = [f"f{i}:h{i}->h{i + 1}" for i in range(200)]
    for label in labels:
        a.on_deliver(label, 100, 0.0)
        b.on_deliver(label, 100, 0.0)
    assert sorted(a.records) == sorted(b.records)
    assert 0 < a.sampled_flows < 200  # rate is actually partial


def test_unattributed_counts_bare_transport_labels():
    recorder = FlowRecorder(seed=1, sample_rate=0.0)
    recorder.on_deliver("shm/9", 64, 0.0)
    recorder.on_deliver("f1:a->b", 64, 0.0)
    assert recorder.unattributed == 1
    assert recorder.by_src.estimate("a") == 64.0


def test_record_table_evicts_eldest_and_counts():
    recorder = FlowRecorder(seed=1, sample_rate=1.0, max_records=4)
    for i in range(10):
        recorder.on_deliver(f"f{i}:a->b", 10, float(i))
    assert len(recorder.records) == 4
    assert recorder.record_evictions == 6
    assert recorder.sampled_flows == 10


def test_label_cache_is_bounded_and_decisions_survive_eviction():
    recorder = FlowRecorder(seed=9, sample_rate=0.5, label_cache=8)
    first = {}
    for i in range(64):
        label = f"f{i}:a->b"
        recorder.on_deliver(label, 1, 0.0)
        first[label] = label in recorder.records
    assert len(recorder._labels) <= 8
    # Re-offering an evicted label re-derives the same decision: the
    # sampled set keyed by label never flip-flops.
    for label, was_sampled in first.items():
        recorder.on_deliver(label, 1, 1.0)
        assert (label in recorder.records) == was_sampled


def test_state_size_stays_bounded_under_flow_churn():
    recorder = FlowRecorder(seed=2, sample_rate=0.01, top_k=16,
                            max_records=8, label_cache=32)
    for i in range(5000):
        recorder.on_deliver(f"f{i}:h{i % 50}->h{(i + 1) % 50}", 100,
                            float(i) * 1e-6)
    assert recorder.messages == 5000
    assert recorder.state_size() <= 3 * 16 + 8 + 32 + 0 + 0


def test_transitions_update_sampled_record_state():
    recorder = FlowRecorder(seed=1, sample_rate=1.0)
    recorder.on_deliver("f1:a->b", 10, 0.0)
    recorder.on_transition("f1:a->b", "resolving", "active", 1e-3)
    recorder.on_transition("f7:x->y", "resolving", "active", 1e-3)
    record = recorder.records["f1:a->b"].as_record()
    assert record["state"] == "active"
    assert record["transitions"] == 1
    assert recorder.transition_counts == {"resolving->active": 2}


def test_top_rejects_unknown_dimension():
    recorder = FlowRecorder()
    with pytest.raises(ValueError):
        recorder.top("host")


# -- rollups -----------------------------------------------------------------


def test_rollup_boundaries_and_gap_fill():
    registry = MetricsRegistry()
    counter = registry.counter("repro.telemetry.test_ticks")
    rollups = RollupRecorder(registry, interval_s=1e-3, retention=16)
    counter.inc(5)
    rollups.maybe_roll(0.5e-3)  # before the first boundary: no window
    assert len(rollups.windows) == 0
    rollups.maybe_roll(1.2e-3)
    assert [w["t_s"] for w in rollups.windows] == [1e-3]
    counter.inc(5)
    # A quiet gap: every elapsed boundary is emitted, carrying the
    # snapshot forward, and counted as a gap window.
    rollups.maybe_roll(4.5e-3)
    assert [w["t_s"] for w in rollups.windows] == [1e-3, 2e-3, 3e-3, 4e-3]
    assert rollups.gap_windows == 2
    values = [v for _, v in rollups.series("repro.telemetry.test_ticks")]
    assert values == [5.0, 10.0, 10.0, 10.0]


def test_rollup_ring_evicts_and_counts():
    registry = MetricsRegistry()
    rollups = RollupRecorder(registry, interval_s=1e-3, retention=4)
    rollups.roll(10e-3)  # boundaries 1e-3..9e-3 through a 4-deep ring
    assert len(rollups.windows) == 4
    assert rollups.evicted == 5


def test_rollup_flush_and_rate_series():
    registry = MetricsRegistry()
    counter = registry.counter("repro.telemetry.test_bytes")
    rollups = RollupRecorder(registry, interval_s=1e-3, retention=8)
    counter.inc(1000)
    rollups.maybe_roll(1e-3)
    counter.inc(3000)
    rollups.flush(2.5e-3)
    rates = rollups.rate_series("repro.telemetry.test_bytes")
    assert rates[0] == (1e-3, pytest.approx(1e6))
    assert rates[1] == (2.5e-3, pytest.approx(3000 / 1.5e-3))
    # flush is idempotent at the same instant.
    rollups.flush(2.5e-3)
    assert len(rollups.windows) == 2


# -- engine profiler ---------------------------------------------------------


def _tiny_sim():
    env = Environment()
    box = {"pings": 0}

    def ticker():
        for _ in range(5):
            yield env.timeout(1e-6)
            box["pings"] += 1

    env.process(ticker())
    env.run(until=1e-3)
    return box["pings"]


def test_profiler_attributes_to_generator_sites():
    profiler = profiler_module.install()
    try:
        assert _tiny_sim() == 5
    finally:
        profiler_module.uninstall()
    sites = dict(profiler.sites)
    assert any("test_flightrecorder.py" in site and "ticker" in site
               for site in sites)
    assert profiler.events_total == sum(e[0] for e in sites.values())
    records = profiler.records()
    assert all(set(r) == {"record", "site", "events", "event_share_pct"}
               for r in records)  # wall-clock excluded: deterministic


def test_profiler_event_counts_are_deterministic():
    def run_once():
        profiler = profiler_module.install()
        try:
            _tiny_sim()
        finally:
            profiler_module.uninstall()
        return profiler.records()

    assert run_once() == run_once()


def test_profiler_install_uninstall_idempotent_and_restores_engine():
    from repro.sim.scheduler import Environment as Engine

    orig_step, orig_run = Engine.step, Engine.run
    first = profiler_module.install()
    again = profiler_module.install()
    assert first is again
    assert profiler_module.installed()
    profiler_module.uninstall()
    assert profiler_module.uninstall() is None
    assert Engine.step is orig_step and Engine.run is orig_run
    assert not profiler_module.installed()


def test_profiler_composes_with_sanitizer():
    from repro.analysis import sanitizer

    had_sanitizer = sanitizer.installed()
    sanitizer.install()
    profiler = profiler_module.install()
    try:
        assert _tiny_sim() == 5
    finally:
        profiler_module.uninstall()
        # Leave a suite-wide REPRO_SANITIZE=1 arming in place — and
        # never uninstall out of order under a REPRO_WAITFOR=1 layer.
        if not had_sanitizer:
            sanitizer.uninstall()
    assert profiler.events_total > 0


# -- session wiring ----------------------------------------------------------


def test_session_arms_and_restores_flight_recorder_handles():
    assert flowrecords_module.ACTIVE is None
    with telemetry.session(flow_sample_rate=0.5,
                           rollup_interval_s=1e-3) as handle:
        assert flowrecords_module.ACTIVE is handle.flows
        assert handle.flows.rollup is handle.rollups
        snapshot = handle.registry.snapshot()
        assert "repro.telemetry.flow_messages" in snapshot
        assert "repro.telemetry.rollup_windows" in snapshot
        assert "repro.telemetry.events_evicted" in snapshot
        assert "repro.telemetry.traces_dropped" in snapshot
    assert flowrecords_module.ACTIVE is None


def test_session_defaults_leave_flight_recorder_off():
    with telemetry.session() as handle:
        assert handle.flows is None
        assert handle.rollups is None
        assert flowrecords_module.ACTIVE is None


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        GOLDEN.write_text(export.jsonl(golden_records()) + "\n")
        print(f"wrote {GOLDEN}")
    else:
        print("usage: python tests/telemetry/test_flightrecorder.py "
              "--regenerate")

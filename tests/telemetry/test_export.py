"""Exporter tests, including the byte-stable JSON-lines golden file.

The golden scenario is a fixed-seed shm ping-pong.  Flow labels carry a
process-global lane counter (``shm/7``), so records are normalised to
the mechanism name before comparison — everything else (timings, counts,
registry values) is deterministic and compared byte-for-byte.

Regenerate after an intentional telemetry/transport timing change with::

    PYTHONPATH=src python tests/telemetry/test_export.py --regenerate
"""

from __future__ import annotations

import json
from pathlib import Path

from repro import telemetry
from repro.hardware import Fabric, Host
from repro.metrics import run_pingpong
from repro.sim import Environment
from repro.telemetry import export
from repro.transports import ShmChannel

GOLDEN = Path(__file__).parent / "golden_pingpong.jsonl"


def _normalise_flow(name: str) -> str:
    return name.split("/")[0]


def golden_records() -> list[dict]:
    """The golden scenario: 5 fully-traced shm ping-pong rounds."""
    env = Environment()
    host = Host(env, "h0", fabric=Fabric(env))
    with telemetry.session(sample_rate=1.0, seed=1234) as handle:
        channel = ShmChannel(host)
        run_pingpong(env, channel.a, channel.b, rounds=5, warmup_rounds=0)
        telemetry.events_module.emit(env, "demo.marker", note="golden")
        records = []
        for record in export.trace_records(handle.tracer):
            record = dict(record)
            record["flow"] = _normalise_flow(record["flow"])
            records.append(record)
        records.extend(export.event_records(handle.events))
        # Histogram reservoirs and gauge closures are deterministic for
        # this workload; counters/gauges are exact.
        records.extend(export.registry_records(handle.registry))
    return records


def test_jsonl_is_compact_sorted_and_one_record_per_line():
    text = export.jsonl([{"b": 1, "a": 2}, {"x": [1, 2]}])
    assert text == '{"a":2,"b":1}\n{"x":[1,2]}'


def test_write_jsonl_round_trips(tmp_path):
    path = tmp_path / "out.jsonl"
    records = [{"a": 1}, {"b": 2.5}]
    assert export.write_jsonl(path, records) == 2
    lines = path.read_text().splitlines()
    assert [json.loads(line) for line in lines] == records
    assert export.write_jsonl(path, []) == 0
    assert path.read_text() == ""


def test_golden_jsonl_is_byte_stable():
    text = export.jsonl(golden_records()) + "\n"
    assert text == GOLDEN.read_text(), (
        "telemetry JSON-lines output changed; if intentional, regenerate "
        "with: PYTHONPATH=src python tests/telemetry/test_export.py "
        "--regenerate"
    )


def test_format_breakdown_totals_to_100_percent():
    env = Environment()
    host = Host(env, "h0", fabric=Fabric(env))
    with telemetry.session() as handle:
        channel = ShmChannel(host)
        run_pingpong(env, channel.a, channel.b, rounds=5, warmup_rounds=0)
        table = export.format_breakdown(handle.tracer.breakdown(),
                                        label="shm")
    lines = table.splitlines()
    assert lines[0].startswith("shm  (n=")
    assert lines[1].split() == ["segment", "mean", "us", "share"]
    assert lines[-1].split()[0] == "total"
    assert lines[-1].split()[-1] == "100.0%"


def test_format_registry_renders_scalars_and_histograms():
    env = Environment()
    host = Host(env, "h0", fabric=Fabric(env))
    with telemetry.session() as handle:
        channel = ShmChannel(host)
        run_pingpong(env, channel.a, channel.b, rounds=5, warmup_rounds=0)
        table = export.format_registry(handle.registry, prefix="repro.lane.")
    assert "repro.lane.shm.messages_delivered" in table
    assert "repro.lane.shm.latency_s" in table
    assert "n=10" in table  # histogram summary rendering


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        GOLDEN.write_text(export.jsonl(golden_records()) + "\n")
        print(f"wrote {GOLDEN}")
    else:
        print(__doc__)

"""Tests for the measurement harness and workload generators."""

import pytest

from repro.cluster import ContainerSpec
from repro.hardware import Host
from repro.metrics import run_pingpong, run_stream
from repro.sim import Environment, RandomStream
from repro.transports import ShmChannel
from repro.workloads import (
    HeavyTailedStream,
    MessageSizeSweep,
    MultiPairStream,
    RequestResponse,
)


class TestRunStream:
    def test_basic_stream_result(self, env, host):
        channel = ShmChannel(host)
        result = run_stream(
            env, [(channel.a, channel.b)], duration_s=0.01,
            hosts=[host],
        )
        assert result.gbps > 0
        assert result.messages > 0
        assert result.payload_bytes == result.messages * (1 << 20)
        assert "h1" in result.cpu_percent
        assert result.total_cpu_percent > 0

    def test_single_pair_tuple_accepted(self, env, host):
        channel = ShmChannel(host)
        result = run_stream(
            env, (channel.a, channel.b), duration_s=0.005, hosts=[host]
        )
        assert result.gbps > 0

    def test_empty_pairs_rejected(self, env):
        with pytest.raises(ValueError):
            run_stream(env, [], duration_s=0.01)

    def test_single_end_rejected(self, env, host):
        channel = ShmChannel(host)
        with pytest.raises(TypeError):
            run_stream(env, channel.a, duration_s=0.01)

    def test_warmup_resets_accounting(self, env, host):
        channel = ShmChannel(host)
        result = run_stream(
            env, [(channel.a, channel.b)], duration_s=0.01,
            warmup_s=0.005, hosts=[host],
        )
        # CPU accounting restarted post-warmup: near one core, not less
        # (a cold window would dilute it).
        assert result.cpu_percent["h1"] > 80

    def test_multi_pair_aggregates(self, env, host):
        channels = [ShmChannel(host) for _ in range(2)]
        result = run_stream(
            env, [(c.a, c.b) for c in channels], duration_s=0.01,
            hosts=[host],
        )
        single_env = Environment()
        single_host = Host(single_env, "h1")
        single_channel = ShmChannel(single_host)
        single = run_stream(
            single_env,
            [(single_channel.a, single_channel.b)],
            duration_s=0.01, hosts=[single_host],
        )
        # Two pairs use two cores: clearly more than one pair's goodput.
        assert result.gbps > single.gbps * 1.2


class TestRunPingPong:
    def test_latency_distribution(self, env, host):
        channel = ShmChannel(host)
        result = run_pingpong(
            env, channel.a, channel.b, rounds=50, message_bytes=4096
        )
        assert len(result.latencies) == 50
        assert result.mean_us() > 0
        assert result.p99_us() >= result.mean_us() * 0.5

    def test_rounds_validated(self, env, host):
        channel = ShmChannel(host)
        with pytest.raises(ValueError):
            run_pingpong(env, channel.a, channel.b, rounds=0)


class TestMessageSizeSweep:
    def test_default_sweep_is_log_spaced(self):
        sizes = MessageSizeSweep(64, 4096).sizes()
        assert sizes == [64, 256, 1024, 4096]

    def test_maximum_included_even_off_grid(self):
        sizes = MessageSizeSweep(64, 5000).sizes()
        assert sizes[-1] == 5000

    def test_validation(self):
        with pytest.raises(ValueError):
            MessageSizeSweep(0, 100).sizes()
        with pytest.raises(ValueError):
            MessageSizeSweep(100, 10).sizes()
        with pytest.raises(ValueError):
            MessageSizeSweep(64, 128, factor=1).sizes()


class TestMultiPairStream:
    def test_builds_n_channels(self, env, host):
        workload = MultiPairStream(env, lambda i: ShmChannel(host), 3)
        assert len(workload.channels) == 3
        assert len(workload.endpoint_pairs()) == 3

    def test_pairs_validated(self, env, host):
        with pytest.raises(ValueError):
            MultiPairStream(env, lambda i: ShmChannel(host), 0)


class TestRequestResponse:
    def test_closed_loop_requests_complete(self, env, host):
        channel = ShmChannel(host)
        workload = RequestResponse(
            env, channel.a, channel.b, rate_per_s=20_000,
            request_bytes=256, response_bytes=1024,
        )
        done = env.process(workload.run(0.01))
        env.run(until=done)
        assert workload.completed > 50
        assert workload.response_times.mean() > 0

    def test_rate_validated(self, env, host):
        channel = ShmChannel(host)
        with pytest.raises(ValueError):
            RequestResponse(env, channel.a, channel.b, rate_per_s=0)


class TestHeavyTailedStream:
    def test_sizes_within_bounds_and_delivery(self, env, host):
        channel = ShmChannel(host)
        workload = HeavyTailedStream(
            env, channel.a, channel.b,
            min_bytes=128, max_bytes=65536,
            rng=RandomStream(1, "ht"),
        )
        done = env.process(workload.run(0.01))
        env.run(until=done)
        assert workload.messages_delivered > 10
        assert workload.bytes_delivered >= workload.messages_delivered * 128


class TestMeasurementReuse:
    """Regression: sequential measurements on one channel must be
    independent (stale in-flight messages once corrupted latency runs)."""

    def test_pingpong_after_stream_is_clean(self, env, host):
        channel = ShmChannel(host)
        run_stream(env, [(channel.a, channel.b)], duration_s=0.01,
                   hosts=[host])
        result = run_pingpong(env, channel.a, channel.b, rounds=30)
        # A clean ping-pong on shm is ~2 us; stale messages would show
        # up as sub-microsecond nonsense or reordering.
        assert 1e-6 < result.latencies.mean() < 5e-6

    def test_two_streams_measure_the_same(self, env, host):
        channel = ShmChannel(host)
        first = run_stream(env, [(channel.a, channel.b)], duration_s=0.01,
                           hosts=[host])
        second = run_stream(env, [(channel.a, channel.b)], duration_s=0.01,
                            hosts=[host])
        assert second.gbps == pytest.approx(first.gbps, rel=0.05)

    def test_per_pair_bytes_sum_to_total(self, env, host):
        channels = [ShmChannel(host) for _ in range(3)]
        result = run_stream(env, [(c.a, c.b) for c in channels],
                            duration_s=0.01, hosts=[host])
        assert sum(result.per_pair_bytes) == result.payload_bytes
        assert sum(result.pair_gbps(i) for i in range(3)) == pytest.approx(
            result.gbps, rel=0.01
        )

    def test_pingpong_after_stream_on_rdma(self, env, host_pair):
        from repro.transports import RdmaChannel

        h1, h2 = host_pair
        channel = RdmaChannel(h1, h2)
        run_stream(env, [(channel.a, channel.b)], duration_s=0.01,
                   hosts=list(host_pair), message_bytes=8192)
        result = run_pingpong(env, channel.a, channel.b, rounds=30)
        assert 2e-6 < result.latencies.mean() < 10e-6

"""Unit tests for containers, placement and the cluster orchestrator."""

import pytest

from repro.cluster import (
    AffinityStrategy,
    BinPackStrategy,
    ClusterOrchestrator,
    ContainerSpec,
    ContainerStatus,
    FabricController,
    RoundRobinStrategy,
    SpreadStrategy,
)
from repro.errors import OrchestrationError, PlacementError, UnknownContainer
from repro.hardware import Host, VirtualMachine
from repro.sim import Environment


class TestContainerSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ContainerSpec("")
        with pytest.raises(ValueError):
            ContainerSpec("c", cpu_shares=0)
        with pytest.raises(ValueError):
            ContainerSpec("c", memory_bytes=-1)

    def test_trust_is_per_tenant(self, env):
        from repro.cluster.container import Container

        host = Host(env, "h1")
        a = Container(ContainerSpec("a", tenant="blue"), host)
        b = Container(ContainerSpec("b", tenant="blue"), host)
        c = Container(ContainerSpec("c", tenant="red"), host)
        assert a.trusts(b)
        assert not a.trusts(c)

    def test_lifecycle(self, env):
        from repro.cluster.container import Container

        container = Container(ContainerSpec("a"), Host(env, "h1"))
        assert container.status is ContainerStatus.PENDING
        container.start()
        assert container.status is ContainerStatus.RUNNING
        container.stop()
        with pytest.raises(RuntimeError):
            container.start()

    def test_relocate_bumps_generation(self, env):
        from repro.cluster.container import Container

        h1, h2 = Host(env, "h1"), Host(env, "h2")
        container = Container(ContainerSpec("a"), h1)
        generation = container.generation
        container.relocate(h2)
        assert container.host is h2
        assert container.generation == generation + 1

    def test_location_string(self, env):
        from repro.cluster.container import Container

        host = Host(env, "h1")
        vm = VirtualMachine(host, "vm0")
        assert Container(ContainerSpec("a"), host).location == "h1"
        assert Container(ContainerSpec("b"), host, vm).location == "h1/vm0"


class TestStrategies:
    def _hosts(self, env, n=3):
        return [Host(env, f"h{i}") for i in range(n)]

    def test_spread_prefers_least_loaded(self, env):
        hosts = self._hosts(env)
        load = {"h0": 2, "h1": 0, "h2": 1}
        chosen = SpreadStrategy().place(ContainerSpec("c"), hosts, load)
        assert chosen.name == "h1"

    def test_spread_requires_hosts(self, env):
        with pytest.raises(PlacementError):
            SpreadStrategy().place(ContainerSpec("c"), [], {})

    def test_binpack_prefers_most_loaded_under_cap(self, env):
        hosts = self._hosts(env)
        load = {"h0": 5, "h1": 2, "h2": 0}
        chosen = BinPackStrategy(max_per_host=6).place(
            ContainerSpec("c"), hosts, load
        )
        assert chosen.name == "h0"

    def test_binpack_respects_cap(self, env):
        hosts = self._hosts(env, 2)
        load = {"h0": 3, "h1": 3}
        with pytest.raises(PlacementError):
            BinPackStrategy(max_per_host=3).place(
                ContainerSpec("c"), hosts, load
            )

    def test_round_robin_cycles(self, env):
        hosts = self._hosts(env)
        strategy = RoundRobinStrategy()
        names = [
            strategy.place(ContainerSpec("c"), hosts, {}).name
            for _ in range(4)
        ]
        assert names == ["h0", "h1", "h2", "h0"]

    def test_affinity_follows_target(self, env):
        hosts = self._hosts(env)
        strategy = AffinityStrategy(locations={"leader": "h2"})
        spec = ContainerSpec("c", labels={"affinity": "leader"})
        assert strategy.place(spec, hosts, {}).name == "h2"

    def test_affinity_falls_back(self, env):
        hosts = self._hosts(env)
        strategy = AffinityStrategy(locations={})
        spec = ContainerSpec("c", labels={"affinity": "ghost"})
        chosen = strategy.place(spec, hosts, {"h0": 1, "h1": 0, "h2": 1})
        assert chosen.name == "h1"


class TestClusterOrchestrator:
    def test_submit_places_and_publishes(self, env, cluster):
        container = cluster.submit(ContainerSpec("web"))
        assert container.status is ContainerStatus.RUNNING
        record = cluster.kv.get(f"/cluster/containers/web")
        assert record["host"] == container.host.name

    def test_duplicate_names_rejected(self, cluster):
        cluster.submit(ContainerSpec("web"))
        with pytest.raises(OrchestrationError):
            cluster.submit(ContainerSpec("web"))

    def test_pinned_placement(self, cluster):
        container = cluster.submit(ContainerSpec("web", pinned_host="h2"))
        assert container.host.name == "h2"

    def test_pin_to_unknown_host_rejected(self, cluster):
        with pytest.raises(PlacementError):
            cluster.submit(ContainerSpec("web", pinned_host="nope"))

    def test_spread_balances_load(self, cluster):
        placed = [cluster.submit(ContainerSpec(f"c{i}")).host.name
                  for i in range(4)]
        assert placed.count("h1") == 2
        assert placed.count("h2") == 2

    def test_unknown_container_raises(self, cluster):
        with pytest.raises(UnknownContainer):
            cluster.container("ghost")

    def test_stop_removes_record(self, cluster):
        cluster.submit(ContainerSpec("web"))
        cluster.stop("web")
        assert cluster.kv.get("/cluster/containers/web") is None
        assert cluster.container("web").status is ContainerStatus.STOPPED

    def test_containers_filtered_by_tenant(self, cluster):
        cluster.submit(ContainerSpec("a", tenant="blue"))
        cluster.submit(ContainerSpec("b", tenant="red"))
        assert [c.name for c in cluster.containers("blue")] == ["a"]

    def test_relocate_updates_kv(self, cluster):
        cluster.submit(ContainerSpec("web", pinned_host="h1"))
        cluster.relocate("web", "h2")
        assert cluster.kv.get("/cluster/containers/web")["host"] == "h2"

    def test_relocate_unknown_destination(self, cluster):
        cluster.submit(ContainerSpec("web"))
        with pytest.raises(PlacementError):
            cluster.relocate("web", "mars")

    def test_duplicate_host_rejected(self, env, cluster, host_pair):
        with pytest.raises(OrchestrationError):
            cluster.add_host(host_pair[0])


class TestVmsAndFabricController:
    def test_vm_registration_flow(self, env, cluster, host_pair):
        h1, __ = host_pair
        vm = VirtualMachine(h1, "vm0")
        cluster.add_vm(vm)
        container = cluster.submit(ContainerSpec("c", pinned_host="vm0"))
        assert container.vm is vm
        assert container.host is h1
        assert cluster.locate("c") is h1

    def test_vm_on_unregistered_host_rejected(self, env, cluster):
        rogue = Host(env, "rogue")
        vm = VirtualMachine(rogue, "vm0")
        with pytest.raises(OrchestrationError):
            cluster.add_vm(vm)

    def test_fabric_controller_colocation(self, env, cluster, host_pair):
        h1, h2 = host_pair
        vm_a = VirtualMachine(h1, "vm-a")
        vm_b = VirtualMachine(h1, "vm-b")
        vm_c = VirtualMachine(h2, "vm-c")
        for vm in (vm_a, vm_b, vm_c):
            cluster.add_vm(vm)
        fabric_controller = cluster.fabric_controller
        assert fabric_controller.colocated("vm-a", "vm-b")
        assert not fabric_controller.colocated("vm-a", "vm-c")
        assert fabric_controller.physical_host_of("vm-c") is h2

    def test_fabric_controller_unknown_vm(self):
        with pytest.raises(OrchestrationError):
            FabricController().vm("ghost")

    def test_fabric_controller_duplicate_vm(self, env, host):
        controller = FabricController()
        vm = VirtualMachine(host, "vm0")
        controller.register(vm)
        with pytest.raises(OrchestrationError):
            controller.register(vm)

    def test_vms_on_host(self, env, host):
        controller = FabricController()
        vms = [VirtualMachine(host, f"vm{i}") for i in range(3)]
        for vm in vms:
            controller.register(vm)
        assert set(controller.vms_on(host)) == set(vms)
        assert len(controller) == 3

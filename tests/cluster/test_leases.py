"""Unit tests for KV-store leases (TTL sessions, expiry cascades)."""

import pytest

from repro.cluster import KeyValueStore
from repro.errors import LeaseError


@pytest.fixture
def kv(env):
    return KeyValueStore(env)


class TestLeaseLifecycle:
    def test_grant_validates_ttl(self, kv):
        with pytest.raises(ValueError):
            kv.grant(0.0)
        with pytest.raises(ValueError):
            kv.grant(-1.0)

    def test_expiry_deletes_attached_keys_in_order(self, env, kv):
        lease = kv.grant(1.0)
        kv.put("/hosts/h1", "a", lease=lease)
        kv.put("/hosts/h1/nic", "b", lease=lease)
        watch = kv.watch("/hosts/")
        env.run(until=1.5)
        assert not lease.alive
        assert kv.get("/hosts/h1") is None
        assert kv.get("/hosts/h1/nic") is None
        assert [(e.kind, e.key) for e in watch.pending()] == [
            ("delete", "/hosts/h1"),
            ("delete", "/hosts/h1/nic"),
        ]
        assert kv.lease_count() == 0

    def test_expiry_runs_hook_after_deletes(self, env, kv):
        seen = []
        lease = kv.grant(
            0.5, on_expire=lambda l: seen.append((l.lease_id, len(kv)))
        )
        kv.put("/a", 1, lease=lease)
        env.run(until=1.0)
        # The key was already gone when the hook ran.
        assert seen == [(lease.lease_id, 0)]

    def test_keepalive_extends_deadline(self, env, kv):
        lease = kv.grant(1.0)
        kv.put("/a", 1, lease=lease)

        def heartbeat():
            for _ in range(5):
                yield env.timeout(0.5)
                kv.keepalive(lease)

        env.process(heartbeat())
        env.run(until=3.0)
        assert lease.alive
        assert kv.get("/a") == 1
        env.run(until=5.0)  # heartbeats stopped at 2.5: lapses at 3.5
        assert not lease.alive
        assert kv.get("/a") is None

    def test_keepalive_dead_lease_raises(self, env, kv):
        lease = kv.grant(0.1)
        env.run(until=0.2)
        with pytest.raises(LeaseError):
            kv.keepalive(lease)

    def test_put_with_dead_lease_raises(self, env, kv):
        lease = kv.grant(0.1)
        env.run(until=0.2)
        with pytest.raises(LeaseError):
            kv.put("/a", 1, lease=lease)

    def test_revoke_deletes_now(self, env, kv):
        lease = kv.grant(10.0)
        kv.put("/a", 1, lease=lease)
        kv.put("/b", 2, lease=lease)
        hook = []
        lease.on_expire = lambda l: hook.append(l)
        assert kv.revoke(lease) == ["/a", "/b"]
        assert not lease.alive
        assert len(kv) == 0
        assert hook == []  # revocation is deliberate: no expiry hook
        with pytest.raises(LeaseError):
            kv.revoke(lease)

    def test_plain_put_detaches_from_lease(self, env, kv):
        lease = kv.grant(1.0)
        kv.put("/a", 1, lease=lease)
        kv.put("/a", 2)  # etcd semantics: detaches
        env.run(until=2.0)
        assert not lease.alive
        assert kv.get("/a") == 2

    def test_reput_moves_key_between_leases(self, env, kv):
        short = kv.grant(1.0)
        long = kv.grant(5.0)
        kv.put("/a", 1, lease=short)
        kv.put("/a", 2, lease=long)
        env.run(until=2.0)  # short lapses without taking /a
        assert kv.get("/a") == 2
        env.run(until=6.0)
        assert kv.get("/a") is None

    def test_delete_detaches_key(self, env, kv):
        lease = kv.grant(1.0)
        kv.put("/a", 1, lease=lease)
        kv.delete("/a")
        assert lease.keys == {}
        env.run(until=2.0)  # expiry cascade has nothing left to do
        assert not lease.alive

    def test_independent_deadlines_one_timer(self, env, kv):
        """Many leases share the lazy expiry timer; each dies on time."""
        deaths = []
        for i in range(1, 6):
            kv.grant(float(i),
                     on_expire=lambda l, i=i: deaths.append((i, env.now)))
        env.run(until=10.0)
        assert deaths == [(i, float(i)) for i in range(1, 6)]

    def test_keepalive_storm_stays_cheap(self, env, kv):
        """Stale heap entries from keepalives are skipped, not scanned."""
        lease = kv.grant(1.0)
        for _ in range(100):
            kv.keepalive(lease)
        env.run(until=0.5)
        assert lease.alive
        env.run(until=2.5)
        assert not lease.alive

"""Datacenter-scale KV-store machinery: coalesced delivery, indexed
watch dispatch, revision history, compaction and precise resync."""

import pytest

from repro.cluster import KeyValueStore, WatchBatch
from repro.errors import CompactedRevision


@pytest.fixture
def kv(env):
    return KeyValueStore(env)


class TestCoalescedDelivery:
    def test_same_instant_puts_collapse_to_one_batch(self, env, kv):
        watch = kv.watch("/c/", coalesce_s=0.0)
        kv.put("/c/a", 1)
        kv.put("/c/a", 2)
        kv.put("/c/b", 10)
        env.run(until=0.0)  # zero-window flush still needs the timer event
        items = watch.queue.drain()
        assert len(items) == 1
        batch = items[0]
        assert type(batch) is WatchBatch
        # One event per key, first-touch order, latest value wins.
        assert [(e.key, e.value) for e in batch] == [
            ("/c/a", 2), ("/c/b", 10),
        ]

    def test_windows_split_batches(self, env, kv):
        watch = kv.watch("/c/", coalesce_s=0.1)
        kv.put("/c/a", 1)

        def later():
            yield env.timeout(0.5)
            kv.put("/c/a", 2)

        env.process(later())
        env.run(until=1.0)
        batches = watch.queue.drain()
        assert [[e.value for e in b] for b in batches] == [[1], [2]]

    def test_delete_after_put_survives_as_latest(self, env, kv):
        watch = kv.watch("/c/", coalesce_s=0.0)
        kv.put("/c/a", 1)
        kv.delete("/c/a")
        env.run(until=0.0)
        (batch,) = watch.queue.drain()
        assert [(e.kind, e.key) for e in batch] == [("delete", "/c/a")]

    def test_pending_flushes_buffer(self, env, kv):
        watch = kv.watch("/c/", coalesce_s=10.0)
        kv.put("/c/a", 1)
        assert watch.has_pending()
        events = watch.pending()  # synchronous drain: no timer wait
        assert [(e.key, e.value) for e in events] == [("/c/a", 1)]
        assert not watch.has_pending()

    def test_cancel_discards_buffer(self, env, kv):
        watch = kv.watch("/c/", coalesce_s=0.0)
        kv.put("/c/a", 1)
        watch.cancel()
        env.run(until=0.0)
        assert watch.queue.drain() == []

    def test_batch_revision_advances_last_revision(self, env, kv):
        watch = kv.watch("/c/", coalesce_s=0.0)
        rev = kv.put("/c/a", 1)
        assert watch.last_revision == rev

    def test_negative_window_rejected(self, kv):
        with pytest.raises(ValueError):
            kv.watch("/c/", coalesce_s=-1.0)


class TestIndexedDispatch:
    def test_dispatch_does_not_scan_unrelated_watches(self, kv):
        """The tentpole property: put cost is independent of how many
        watches exist on *other* prefixes."""
        for i in range(8):
            kv.watch(f"/w{i}/")
        kv.put("/w0/x", 1)
        baseline = kv.dispatch_checks
        for i in range(8, 256):
            kv.watch(f"/w{i}/")
        kv.put("/w0/y", 2)
        assert kv.dispatch_checks - baseline <= 2
        assert kv.dispatch_deliveries == 2

    def test_dispatch_counts_only_candidates_on_path(self, kv):
        deep = kv.watch("/a/b/c/")
        sibling = kv.watch("/a/x/")
        kv.put("/a/b/c/k", 1)
        # The sibling subtree is never visited.
        assert [e.key for e in deep.pending()] == ["/a/b/c/k"]
        assert sibling.pending() == []

    def test_partial_segment_prefixes_match(self, kv):
        watch = kv.watch("/cluster/host")  # no trailing slash
        kv.put("/cluster/hosts/h1", 1)
        kv.put("/cluster/hostile", 2)
        kv.put("/cluster/vms/v1", 3)
        assert [e.key for e in watch.pending()] == [
            "/cluster/hosts/h1", "/cluster/hostile",
        ]

    def test_empty_prefix_watch_sees_everything(self, kv):
        watch = kv.watch("")
        kv.put("/a", 1)
        kv.put("/b/c", 2)
        assert [e.key for e in watch.pending()] == ["/a", "/b/c"]

    def test_cancelled_watch_is_unindexed(self, kv):
        watch = kv.watch("/c/")
        watch.cancel()
        before = kv.dispatch_checks
        kv.put("/c/a", 1)
        assert kv.dispatch_checks == before  # entry removed, not skipped

    def test_trie_keys_listing_sorted(self, kv):
        # DFS order of the trie is not lexicographic ('/' sorts between
        # '.' and '0'); keys() must still return sorted results.
        kv.put("/x/a/b", 1)
        kv.put("/x/a-b", 2)
        kv.put("/x/a.b", 3)
        assert kv.keys("/x/") == ["/x/a-b", "/x/a.b", "/x/a/b"]
        assert kv.keys("/x/a") == ["/x/a-b", "/x/a.b", "/x/a/b"]
        assert kv.keys("/y/") == []

    def test_keys_after_deletes_prunes_clean(self, kv):
        kv.put("/x/a", 1)
        kv.put("/x/b", 2)
        kv.delete("/x/a")
        assert kv.keys("/x/") == ["/x/b"]
        kv.delete("/x/b")
        assert kv.keys("") == []
        assert not kv._root.children  # fully pruned


class TestHistoryAndCompaction:
    def test_precise_resync_replays_missed_deletes(self, env, kv):
        watch = kv.watch("/c/")
        kv.put("/c/a", 1)
        anchor = watch.last_revision
        watch.pending()
        kv.put("/c/a", 2)
        kv.delete("/c/a")
        kv.put("/d/other", 9)  # outside the prefix: never replayed
        watch.pending()  # live copies "lost" (modelling a dropped link)
        assert watch.resync(since=anchor) == 2
        assert [(e.kind, e.value) for e in watch.pending()] == [
            ("put", 2), ("delete", 2),  # deletes carry the last value
        ]

    def test_start_revision_watch_replays_history(self, env, kv):
        kv.put("/c/a", 1)
        rev = kv.put("/c/b", 2)
        kv.delete("/c/a")
        watch = kv.watch("/c/", start_revision=rev)
        assert [(e.kind, e.key) for e in watch.pending()] == [
            ("put", "/c/b"), ("delete", "/c/a"),
        ]

    def test_compaction_horizon_raises(self, env, kv):
        watch = kv.watch("/c/")
        kv.put("/c/a", 1)
        kv.put("/c/a", 2)
        kv.compact(kv.revision)
        with pytest.raises(CompactedRevision):
            watch.resync(since=1)
        # Snapshot fallback still recovers current state.
        watch.pending()
        assert watch.resync() == 1
        assert [(e.kind, e.value) for e in watch.pending()] == [("put", 2)]

    def test_compact_future_revision_rejected(self, kv):
        kv.put("/a", 1)
        with pytest.raises(ValueError):
            kv.compact(kv.revision + 1)

    def test_history_limit_auto_compacts(self, env):
        kv = KeyValueStore(env, history_limit=4)
        for i in range(10):
            kv.put("/a", i)
        assert len(kv._history) == 4
        assert kv.compacted_revision == 6
        watch = kv.watch("/")
        with pytest.raises(CompactedRevision):
            watch.resync(since=3)
        assert watch.resync(since=6) == 4

    def test_history_limit_validated(self, env):
        with pytest.raises(ValueError):
            KeyValueStore(env, history_limit=0)

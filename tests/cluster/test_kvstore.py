"""Unit tests for the etcd-like KV store."""

import pytest

from repro.cluster import KeyValueStore


@pytest.fixture
def kv(env):
    return KeyValueStore(env)


def test_put_get_delete(kv):
    kv.put("/a", 1)
    assert kv.get("/a") == 1
    assert "/a" in kv
    assert kv.delete("/a")
    assert kv.get("/a") is None
    assert not kv.delete("/a")


def test_get_default(kv):
    assert kv.get("/missing", "fallback") == "fallback"


def test_revisions_monotonic(kv):
    r1 = kv.put("/a", 1)
    r2 = kv.put("/a", 2)
    assert r2 > r1
    assert kv.revision == r2


def test_keys_and_items_by_prefix(kv):
    kv.put("/x/1", "a")
    kv.put("/x/2", "b")
    kv.put("/y/1", "c")
    assert kv.keys("/x/") == ["/x/1", "/x/2"]
    assert dict(kv.items("/x/")) == {"/x/1": "a", "/x/2": "b"}
    assert len(kv) == 3


def test_bad_keys_rejected(kv):
    with pytest.raises(ValueError):
        kv.put("", 1)
    with pytest.raises(ValueError):
        kv.put(" padded ", 1)


def test_watch_sees_puts_and_deletes(kv):
    watch = kv.watch("/net/")
    kv.put("/net/a", 1)
    kv.put("/other/b", 2)
    kv.delete("/net/a")
    events = watch.pending()
    assert [(e.kind, e.key) for e in events] == [
        ("put", "/net/a"),
        ("delete", "/net/a"),
    ]


def test_watch_from_process(env, kv):
    watch = kv.watch("/c/")
    seen = []

    def watcher():
        event = yield watch.queue.get()
        seen.append((event.kind, event.key, event.value))

    def writer():
        yield env.timeout(1)
        kv.put("/c/x", 42)

    env.process(watcher())
    env.process(writer())
    env.run()
    assert seen == [("put", "/c/x", 42)]


def test_cancelled_watch_gets_nothing(kv):
    watch = kv.watch("")
    watch.cancel()
    kv.put("/a", 1)
    assert watch.pending() == []


def test_compare_and_put(kv):
    assert kv.compare_and_put("/a", None, 1)       # create
    assert not kv.compare_and_put("/a", 99, 2)     # wrong expectation
    assert kv.compare_and_put("/a", 1, 2)          # correct CAS
    assert kv.get("/a") == 2


def test_watch_event_carries_revision(kv):
    watch = kv.watch("")
    revision = kv.put("/a", 1)
    event = watch.pending()[0]
    assert event.revision == revision

"""Unit tests for the etcd-like KV store."""

import pytest

from repro.cluster import ABSENT, KeyValueStore


@pytest.fixture
def kv(env):
    return KeyValueStore(env)


def test_put_get_delete(kv):
    kv.put("/a", 1)
    assert kv.get("/a") == 1
    assert "/a" in kv
    assert kv.delete("/a")
    assert kv.get("/a") is None
    assert not kv.delete("/a")


def test_get_default(kv):
    assert kv.get("/missing", "fallback") == "fallback"


def test_revisions_monotonic(kv):
    r1 = kv.put("/a", 1)
    r2 = kv.put("/a", 2)
    assert r2 > r1
    assert kv.revision == r2


def test_keys_and_items_by_prefix(kv):
    kv.put("/x/1", "a")
    kv.put("/x/2", "b")
    kv.put("/y/1", "c")
    assert kv.keys("/x/") == ["/x/1", "/x/2"]
    assert dict(kv.items("/x/")) == {"/x/1": "a", "/x/2": "b"}
    assert len(kv) == 3


def test_bad_keys_rejected(kv):
    with pytest.raises(ValueError):
        kv.put("", 1)
    with pytest.raises(ValueError):
        kv.put(" padded ", 1)


def test_watch_sees_puts_and_deletes(kv):
    watch = kv.watch("/net/")
    kv.put("/net/a", 1)
    kv.put("/other/b", 2)
    kv.delete("/net/a")
    events = watch.pending()
    assert [(e.kind, e.key) for e in events] == [
        ("put", "/net/a"),
        ("delete", "/net/a"),
    ]


def test_watch_from_process(env, kv):
    watch = kv.watch("/c/")
    seen = []

    def watcher():
        event = yield watch.queue.get()
        seen.append((event.kind, event.key, event.value))

    def writer():
        yield env.timeout(1)
        kv.put("/c/x", 42)

    env.process(watcher())
    env.process(writer())
    env.run()
    assert seen == [("put", "/c/x", 42)]


def test_cancelled_watch_gets_nothing(kv):
    watch = kv.watch("")
    watch.cancel()
    kv.put("/a", 1)
    assert watch.pending() == []


def test_compare_and_put(kv):
    assert kv.compare_and_put("/a", ABSENT, 1)     # create-if-absent
    assert not kv.compare_and_put("/a", ABSENT, 2)  # already exists
    assert not kv.compare_and_put("/a", 99, 2)     # wrong expectation
    assert kv.compare_and_put("/a", 1, 2)          # correct CAS
    assert kv.get("/a") == 2


def test_compare_and_put_stored_none_regression(kv):
    """A key explicitly stored as ``None`` is distinct from a missing key.

    The old API used ``expected=None`` for create-if-absent, so a stored
    ``None`` was indistinguishable from absence: a second "create" would
    clobber it.  With the ABSENT sentinel both operations are exact.
    """
    kv.put("/lease", None)
    assert not kv.compare_and_put("/lease", ABSENT, "stolen")
    assert kv.get("/lease", "default") is None
    assert kv.compare_and_put("/lease", None, "owner-1")  # CAS on stored None
    assert kv.get("/lease") == "owner-1"
    assert not kv.compare_and_put("/missing", None, 1)    # None != absent
    assert "/missing" not in kv


def test_watch_event_carries_revision(kv):
    watch = kv.watch("")
    revision = kv.put("/a", 1)
    event = watch.pending()[0]
    assert event.revision == revision


# -- watch edge cases ----------------------------------------------------------


def test_cancel_during_active_watch_loop(env, kv):
    """cancel() while a process is parked on the queue: the consumer
    never sees post-cancel events and the park stays pending forever."""
    watch = kv.watch("/c/")
    seen = []

    def watcher():
        while True:
            event = yield watch.queue.get()
            seen.append(event.key)

    def driver():
        yield env.timeout(1)
        kv.put("/c/before", 1)
        yield env.timeout(1)
        watch.cancel()
        kv.put("/c/after", 2)
        yield env.timeout(1)

    env.process(watcher())
    done = env.process(driver())
    env.run(until=done)
    assert seen == ["/c/before"]
    assert watch.cancelled
    assert watch.pending() == []


def test_include_existing_replays_before_concurrent_puts(kv):
    """The snapshot replay is ordered (sorted keys, current revision) and
    strictly precedes anything written after the watch was taken."""
    kv.put("/c/b", 1)
    kv.put("/c/a", 2)
    snapshot_revision = kv.revision
    watch = kv.watch("/c/", include_existing=True)
    kv.put("/c/z", 3)      # lands after the replay
    kv.put("/c/a", 4)      # update also after the replay
    events = watch.pending()
    assert [(e.kind, e.key, e.value) for e in events] == [
        ("put", "/c/a", 2),
        ("put", "/c/b", 1),
        ("put", "/c/z", 3),
        ("put", "/c/a", 4),
    ]
    # Replayed events are stamped at the snapshot revision, not 0 and
    # not the later write revisions.
    assert events[0].revision == snapshot_revision
    assert events[1].revision == snapshot_revision
    assert events[2].revision > snapshot_revision


def test_delete_under_watched_prefix_carries_last_value(kv):
    watch = kv.watch("/c/")
    kv.put("/c/x", "v1")
    kv.put("/c/x", "v2")
    kv.delete("/c/x")
    kv.delete("/other")          # outside the prefix, and absent anyway
    events = watch.pending()
    assert [(e.kind, e.value) for e in events] == [
        ("put", "v1"), ("put", "v2"), ("delete", "v2"),
    ]


def test_resync_replays_live_state_only(kv):
    """resync() cannot resurrect deletions — only live keys replay."""
    watch = kv.watch("/c/")
    kv.put("/c/kept", 1)
    kv.put("/c/gone", 2)
    kv.delete("/c/gone")
    watch.pending()              # drop the live deliveries
    replayed = watch.resync()
    assert replayed == 1
    assert [(e.kind, e.key) for e in watch.pending()] == [("put", "/c/kept")]


def test_resync_on_cancelled_watch_is_noop(kv):
    kv.put("/c/a", 1)
    watch = kv.watch("/c/")
    watch.cancel()
    assert watch.resync() == 0
    assert watch.pending() == []

"""Rack-sharded orchestration: topology, incremental load accounting,
rack-aware placement and lease-backed host liveness."""

import pytest

from repro.cluster import (
    ClusterOrchestrator,
    ContainerSpec,
    RackAwareStrategy,
)
from repro.cluster.orchestrator import DEFAULT_RACK
from repro.errors import OrchestrationError, PlacementError
from repro.hardware import Host
from repro.sim import Environment


def build(env, hosts=6, racks=3, ttl=None):
    strategy = RackAwareStrategy()
    cluster = ClusterOrchestrator(env, strategy=strategy,
                                  host_lease_ttl_s=ttl)
    strategy.cluster = cluster
    for i in range(hosts):
        cluster.add_host(Host(env, f"h{i}"), rack=f"r{i % racks}")
    return cluster


class TestRackTopology:
    def test_membership(self, env):
        cluster = build(env)
        assert cluster.rack_names() == ("r0", "r1", "r2")
        assert cluster.rack_of("h4") == "r1"
        assert [h.name for h in cluster.rack_hosts("r0")] == ["h0", "h3"]
        with pytest.raises(OrchestrationError):
            cluster.rack_of("nope")

    def test_default_rack(self, env):
        cluster = ClusterOrchestrator(env)
        cluster.add_host(Host(env, "h1"))
        assert cluster.rack_of("h1") == DEFAULT_RACK

    def test_fail_host_leaves_rack_up_set(self, env):
        cluster = build(env)
        cluster.fail_host("h0")
        assert [h.name for h in cluster.rack_hosts("r0")] == ["h3"]
        cluster.recover_host("h0")
        assert [h.name for h in cluster.rack_hosts("r0")] == ["h3", "h0"]


class TestIncrementalLoad:
    def test_lifecycle_keeps_counts(self, env):
        cluster = build(env)
        cluster.submit(ContainerSpec("a", pinned_host="h0"))
        cluster.submit(ContainerSpec("b", pinned_host="h0"))
        cluster.submit(ContainerSpec("c", pinned_host="h1"))
        assert cluster.load_of("h0") == 2
        assert cluster.rack_load("r0") == 2
        assert cluster.containers_on("h0") == ("a", "b")
        cluster.stop("a")
        assert cluster.load_of("h0") == 1
        cluster.remove("a")  # stop then remove must not double-decrement
        assert cluster.load_of("h0") == 1
        cluster.remove("b")
        assert cluster.load_of("h0") == 0
        assert cluster.rack_load("r0") == 0
        assert cluster.rack_load("r1") == 1

    def test_relocate_moves_counts_between_racks(self, env):
        cluster = build(env)
        cluster.submit(ContainerSpec("a", pinned_host="h0"))
        cluster.relocate("a", "h1")
        assert cluster.load_of("h0") == 0
        assert cluster.load_of("h1") == 1
        assert cluster.rack_load("r0") == 0
        assert cluster.rack_load("r1") == 1
        assert cluster.containers_on("h1") == ("a",)

    def test_load_by_host_is_a_copy(self, env):
        cluster = build(env)
        cluster.submit(ContainerSpec("a", pinned_host="h0"))
        view = cluster._load_by_host()
        view["h0"] = 99
        assert cluster.load_of("h0") == 1

    def test_fail_host_drops_its_containers_from_books(self, env):
        cluster = build(env)
        cluster.submit(ContainerSpec("a", pinned_host="h0"))
        cluster.submit(ContainerSpec("b", pinned_host="h3"))
        lost = cluster.fail_host("h0")
        assert lost == ["a"]
        assert cluster.load_of("h0") == 0
        assert cluster.rack_load("r0") == 1  # b on h3 survives


class TestRackAwarePlacement:
    def test_spreads_across_racks_by_average_load(self, env):
        cluster = build(env)
        placed = [cluster.submit(ContainerSpec(f"c{i}")).host.name
                  for i in range(6)]
        # Six submits over three two-host racks land one per host.
        assert sorted(placed) == [f"h{i}" for i in range(6)]

    def test_rack_pin_label(self, env):
        cluster = build(env)
        c = cluster.submit(ContainerSpec("a", labels={"rack": "r2"}))
        assert cluster.rack_of(c.host.name) == "r2"

    def test_skips_racks_with_no_live_hosts(self, env):
        cluster = build(env, hosts=2, racks=2)
        cluster.fail_host("h0")
        for i in range(3):
            assert cluster.submit(ContainerSpec(f"c{i}")).host.name == "h1"

    def test_all_racks_down_raises(self, env):
        cluster = build(env, hosts=2, racks=2)
        cluster.fail_host("h0")
        cluster.fail_host("h1")
        with pytest.raises(PlacementError):
            cluster.submit(ContainerSpec("a"))

    def test_unbound_strategy_falls_back_to_spread(self, env):
        strategy = RackAwareStrategy()  # no cluster bound
        cluster = ClusterOrchestrator(env, strategy=strategy)
        cluster.add_host(Host(env, "h1"))
        assert cluster.submit(ContainerSpec("a")).host.name == "h1"


class TestLeaseBackedLiveness:
    TTL = 0.3

    def test_keepalives_keep_hosts_up(self, env):
        cluster = build(env, ttl=self.TTL)
        env.run(until=10 * self.TTL)
        assert all(cluster.is_host_up(f"h{i}") for i in range(6))
        assert cluster.kv.lease_count() == 6

    def test_silent_host_expires_and_cascades(self, env):
        cluster = build(env, ttl=self.TTL)
        cluster.submit(ContainerSpec("a", pinned_host="h0"))
        watch = cluster.watch_hosts()
        env.run(until=self.TTL)
        watch.pending()  # drain steady-state noise
        cluster.silence_keepalives("h0")
        env.run(until=4 * self.TTL)
        assert not cluster.is_host_up("h0")
        assert cluster.host_lease("h0") is None
        # The *store* deleted the host key; watchers saw an ordinary
        # DELETE — nobody called fail_host.
        assert [(e.kind, e.key) for e in watch.pending()] == [
            ("delete", "/cluster/hosts/h0"),
        ]
        assert "a" not in [c.spec.name for c in cluster.containers()]

    def test_fail_host_revokes_lease(self, env):
        cluster = build(env, ttl=self.TTL)
        lease = cluster.host_lease("h0")
        cluster.fail_host("h0")
        assert not lease.alive
        assert cluster.kv.get("/cluster/hosts/h0") is None

    def test_recover_host_regrants_and_resumes(self, env):
        cluster = build(env, ttl=self.TTL)
        cluster.silence_keepalives("h0")
        env.run(until=3 * self.TTL)
        assert not cluster.is_host_up("h0")
        cluster.recover_host("h0")
        env.run(until=10 * self.TTL)  # keepalives resumed: stays up
        assert cluster.is_host_up("h0")
        assert cluster.kv.get("/cluster/hosts/h0") is not None

    def test_host_record_carries_rack(self, env):
        cluster = build(env, ttl=self.TTL)
        assert cluster.kv.get("/cluster/hosts/h4")["rack"] == "r1"

"""Unit tests for the NIC and the switched fabric."""

import pytest

from repro.hardware import Fabric, Host, NicSpec, PhysicalNic, PAPER_TESTBED
from repro.sim import Environment


def test_nic_capabilities_follow_spec(env):
    nic = PhysicalNic(env, NicSpec(rdma_capable=False, dpdk_capable=True))
    assert not nic.rdma_capable
    assert nic.dpdk_capable


def test_goodput_below_link_rate(env):
    nic = PhysicalNic(env)
    assert nic.spec.goodput_bytes < nic.spec.link_rate_bytes
    assert nic.spec.link_rate_bytes == pytest.approx(5e9)


def test_engine_service_takes_op_time(env, runner):
    nic = PhysicalNic(env)

    def op():
        yield from nic.engine_service(0)
        return env.now

    assert runner(op()) == pytest.approx(nic.spec.rdma_engine_op_seconds)


def test_engine_serialises_ops(env):
    nic = PhysicalNic(env)
    finished = []

    def op(name):
        yield from nic.engine_service(0)
        finished.append((env.now, name))

    env.process(op("a"))
    env.process(op("b"))
    env.run()
    assert finished[1][0] == pytest.approx(2 * nic.spec.rdma_engine_op_seconds)


def test_engine_utilisation_tracked(env):
    nic = PhysicalNic(env)

    def ops():
        for _ in range(10):
            yield from nic.engine_service(0)

    done = env.process(ops())
    env.run(until=done)
    assert nic.engine_utilisation() == pytest.approx(1.0)


def test_fabric_attach_and_reject_duplicates(env):
    fabric = Fabric(env)
    nic = PhysicalNic(env)
    fabric.attach(nic)
    assert nic.fabric is fabric
    with pytest.raises(ValueError):
        fabric.attach(nic)


def test_fabric_send_delivers_after_latency_and_serialisation(env):
    fabric = Fabric(env)
    h1 = Host(env, "h1", fabric=fabric)
    h2 = Host(env, "h2", fabric=fabric)
    delivered = []

    def send():
        yield from fabric.send(
            h1.nic, h2.nic, 1_000_000, deliver=lambda: delivered.append(env.now)
        )

    env.process(send())
    env.run()
    serialisation = 1_000_000 / h1.nic.spec.goodput_bytes
    expected = 2 * serialisation + fabric.one_way_latency_s
    assert delivered[0] == pytest.approx(expected, rel=0.01)


def test_fabric_send_requires_attached_nics(env):
    fabric = Fabric(env)
    h1 = Host(env, "h1", fabric=fabric)
    lonely = PhysicalNic(env)

    def send():
        yield from fabric.send(h1.nic, lonely, 10, deliver=lambda: None)

    process = env.process(send())
    with pytest.raises(ValueError):
        env.run(until=process)


def test_fabric_rejects_loopback(env):
    fabric = Fabric(env)
    h1 = Host(env, "h1", fabric=fabric)

    def send():
        yield from fabric.send(h1.nic, h1.nic, 10, deliver=lambda: None)

    process = env.process(send())
    with pytest.raises(ValueError):
        env.run(until=process)


def test_pipelined_sends_reach_link_rate(env):
    """Back-to-back sends must pipeline (egress is paid by the caller,
    propagation+ingress happen asynchronously)."""
    fabric = Fabric(env)
    h1 = Host(env, "h1", fabric=fabric)
    h2 = Host(env, "h2", fabric=fabric)
    delivered = []
    message = 1_000_000

    def send_many():
        for _ in range(10):
            yield from fabric.send(
                h1.nic, h2.nic, message,
                deliver=lambda: delivered.append(env.now),
            )

    env.process(send_many())
    env.run()
    total = 10 * message
    rate = total / delivered[-1]
    assert rate == pytest.approx(h1.nic.spec.goodput_bytes, rel=0.15)


def test_host_assembles_paper_testbed(env, fabric):
    host = Host(env, "h1", fabric=fabric)
    assert host.spec is PAPER_TESTBED
    assert host.cpu.cores == 4
    assert host.rdma_capable and host.dpdk_capable
    assert host.fabric is fabric
    assert host.nic.host is host


def test_host_without_rdma_spec(env):
    host = Host(env, "h1", spec=PAPER_TESTBED.without_rdma())
    assert not host.rdma_capable
    assert not host.dpdk_capable


def test_reset_accounting_clears_counters(env, fabric):
    host = Host(env, "h1", fabric=fabric)

    def work():
        yield from host.execute(1e6)

    env.process(work())
    env.run()
    assert host.cpu.utilisation() > 0
    host.reset_accounting()
    assert host.cpu.utilisation() == pytest.approx(0.0)


class TestTwoTierFabric:
    def _cross_rack_setup(self, core_gbps=None):
        from repro.hardware import Fabric, Host
        from repro.sim import Environment

        env = Environment()
        kwargs = {}
        if core_gbps is not None:
            kwargs["core_rate_bps"] = core_gbps * 1e9
        fabric = Fabric(env, **kwargs)
        h1 = Host(env, "h1", fabric=fabric)
        h2 = Host(env, "h2", fabric=fabric)
        return env, fabric, h1, h2

    def test_flat_fabric_never_crosses_core(self):
        env, fabric, h1, h2 = self._cross_rack_setup()
        assert fabric.core is None
        assert not fabric.crosses_core(h1.nic, h2.nic)

    def test_rack_assignment_and_core_detection(self):
        env, fabric, h1, h2 = self._cross_rack_setup(core_gbps=100)
        fabric.assign_rack(h1.nic, "rack-a")
        fabric.assign_rack(h2.nic, "rack-b")
        assert fabric.rack_of(h1.nic) == "rack-a"
        assert fabric.crosses_core(h1.nic, h2.nic)
        fabric.assign_rack(h2.nic, "rack-a")
        assert not fabric.crosses_core(h1.nic, h2.nic)

    def test_assign_rack_requires_attachment(self, env):
        from repro.hardware import Fabric, PhysicalNic

        fabric = Fabric(env)
        stray = PhysicalNic(env)
        with pytest.raises(ValueError):
            fabric.assign_rack(stray, "rack-a")

    def test_oversubscribed_core_caps_cross_rack_traffic(self):
        """A 10 Gb/s core throttles cross-rack flows below the 40G NICs."""
        from repro.transports import RdmaChannel
        from repro.hardware import to_gbps

        env, fabric, h1, h2 = self._cross_rack_setup(core_gbps=10)
        fabric.assign_rack(h1.nic, "rack-a")
        fabric.assign_rack(h2.nic, "rack-b")
        channel = RdmaChannel(h1, h2)
        got = {"bytes": 0}
        duration = 0.02

        def sender():
            while env.now < duration:
                yield from channel.a.send(1 << 20)

        def receiver():
            while True:
                message = yield from channel.b.recv()
                got["bytes"] += message.size_bytes

        env.process(sender())
        env.process(receiver())
        env.run(until=duration)
        rate = to_gbps(got["bytes"] / duration)
        assert rate == pytest.approx(10, rel=0.15)

    def test_intra_rack_traffic_keeps_full_rate(self):
        from repro.transports import RdmaChannel
        from repro.hardware import to_gbps

        env, fabric, h1, h2 = self._cross_rack_setup(core_gbps=10)
        fabric.assign_rack(h1.nic, "rack-a")
        fabric.assign_rack(h2.nic, "rack-a")  # same rack
        channel = RdmaChannel(h1, h2)
        got = {"bytes": 0}
        duration = 0.02

        def sender():
            while env.now < duration:
                yield from channel.a.send(1 << 20)

        def receiver():
            while True:
                message = yield from channel.b.recv()
                got["bytes"] += message.size_bytes

        env.process(sender())
        env.process(receiver())
        env.run(until=duration)
        assert to_gbps(got["bytes"] / duration) == pytest.approx(38.8,
                                                                 rel=0.1)

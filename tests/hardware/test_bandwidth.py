"""Unit tests for the shared-bandwidth pipe."""

import pytest

from repro.hardware import BandwidthPipe
from repro.sim import Environment


def test_uncontended_transfer_time(env, runner):
    pipe = BandwidthPipe(env, rate_bytes=1000, chunk_bytes=100)

    def move():
        seconds = yield from pipe.transfer(500)
        return seconds

    assert runner(move()) == pytest.approx(0.5)


def test_two_flows_share_capacity(env):
    pipe = BandwidthPipe(env, rate_bytes=1000, chunk_bytes=10)
    finished = []

    def move(name):
        yield from pipe.transfer(500)
        finished.append((env.now, name))

    env.process(move("a"))
    env.process(move("b"))
    env.run()
    # 1000 bytes total through a 1000 B/s pipe => both done around 1s.
    assert finished[-1][0] == pytest.approx(1.0, rel=0.05)
    # Fair sharing: the first finisher cannot be much earlier.
    assert finished[0][0] > 0.9


def test_aggregate_rate_is_capacity(env):
    pipe = BandwidthPipe(env, rate_bytes=1000, chunk_bytes=50)

    def move():
        yield from pipe.transfer(250)

    for _ in range(4):
        env.process(move())
    env.run()
    assert env.now == pytest.approx(1.0)
    assert pipe.bytes_moved == 1000


def test_zero_bytes_transfer_is_instant(env, runner):
    pipe = BandwidthPipe(env, rate_bytes=1000)

    def move():
        seconds = yield from pipe.transfer(0)
        return seconds

    assert runner(move()) == 0


def test_negative_bytes_rejected(env):
    pipe = BandwidthPipe(env, rate_bytes=1000)

    def move():
        yield from pipe.transfer(-5)

    process = env.process(move())
    with pytest.raises(ValueError):
        env.run(until=process)


def test_invalid_construction(env):
    with pytest.raises(ValueError):
        BandwidthPipe(env, rate_bytes=0)
    with pytest.raises(ValueError):
        BandwidthPipe(env, rate_bytes=10, chunk_bytes=0)


def test_utilisation_full_when_saturated(env):
    pipe = BandwidthPipe(env, rate_bytes=1000, chunk_bytes=100)

    def move():
        yield from pipe.transfer(1000)

    env.process(move())
    env.run()
    assert pipe.utilisation() == pytest.approx(1.0)


def test_seconds_for(env):
    pipe = BandwidthPipe(env, rate_bytes=2000)
    assert pipe.seconds_for(1000) == pytest.approx(0.5)


def test_reset_accounting(env):
    pipe = BandwidthPipe(env, rate_bytes=1000)

    def move():
        yield from pipe.transfer(100)

    env.process(move())
    env.run()
    pipe.reset_accounting()
    assert pipe.bytes_moved == 0

"""Unit tests for the memory bus model."""

import pytest

from repro.hardware import CpuSet, CpuSpec, MemoryBus, MemorySpec
from repro.sim import Environment


@pytest.fixture
def bus(env):
    # 1000 B/s bus, copies cost 1 cycle/byte at 1 kHz => 1 B/s/core?? No:
    # keep numbers simple: 1 GHz core, 0.5 cycles/byte => 2e9 B/s/core,
    # bus 1e9 B/s => bus-bound copies.
    spec = MemorySpec(
        capacity_bytes=1e6,
        bus_bandwidth_bps=8e9,  # 1e9 bytes/s
        copy_cycles_per_byte=0.5,
        chunk_bytes=1000,
    )
    return MemoryBus(env, spec)


@pytest.fixture
def cpu(env):
    return CpuSet(env, CpuSpec(cores=2, frequency_hz=1e9))


def test_dma_is_bus_bound(env, bus, runner):
    def move():
        yield from bus.dma(1e6)
        return env.now

    assert runner(move()) == pytest.approx(1e-3)


def test_copy_bus_bound_case(env, bus, cpu, runner):
    # Core copy rate = 1e9/0.5 = 2e9 B/s > bus 1e9 B/s => bus-bound.
    def move():
        yield from bus.copy(cpu, 1e6)
        return env.now

    assert runner(move()) == pytest.approx(1e-3)


def test_copy_cpu_bound_case(env, runner):
    spec = MemorySpec(
        bus_bandwidth_bps=8e12,  # effectively infinite bus
        copy_cycles_per_byte=2.0,
        chunk_bytes=1 << 20,
    )
    bus = MemoryBus(env, spec)
    cpu = CpuSet(env, CpuSpec(cores=1, frequency_hz=1e9))

    def move():
        yield from bus.copy(cpu, 1e6)  # 2e6 cycles = 2 ms
        return env.now

    assert runner(move()) == pytest.approx(2e-3)


def test_copy_holds_a_core_the_whole_time(env, bus, cpu):
    def move():
        yield from bus.copy(cpu, 1e6)

    env.process(move())
    env.run()
    assert cpu.utilisation() == pytest.approx(1.0, rel=0.01)


def test_concurrent_copies_share_the_bus(env, bus, cpu):
    finished = []

    def move(name):
        yield from bus.copy(cpu, 5e5)
        finished.append((env.now, name))

    env.process(move("a"))
    env.process(move("b"))
    env.run()
    assert finished[-1][0] == pytest.approx(1e-3, rel=0.05)


def test_allocate_and_free(bus):
    bus.allocate(5e5)
    assert bus.allocated_bytes == 5e5
    bus.free(2e5)
    assert bus.allocated_bytes == 3e5


def test_allocate_beyond_capacity_raises(bus):
    with pytest.raises(MemoryError):
        bus.allocate(2e6)


def test_negative_allocation_rejected(bus):
    with pytest.raises(ValueError):
        bus.allocate(-1)


def test_free_never_goes_negative(bus):
    bus.allocate(100)
    bus.free(1e9)
    assert bus.allocated_bytes == 0


def test_zero_byte_copy_is_free(env, bus, cpu, runner):
    def move():
        yield from bus.copy(cpu, 0)
        return env.now

    assert runner(move()) == 0

"""Unit tests for hosts, VMs and the specs module."""

import pytest

from repro.hardware import (
    Host,
    HostSpec,
    NicSpec,
    PAPER_TESTBED,
    VirtualMachine,
    VmSpec,
    gbps,
    to_gbps,
)
from repro.sim import Environment


def test_gbps_roundtrip():
    assert to_gbps(gbps(40)) == pytest.approx(40)
    assert gbps(8) == pytest.approx(1e9)


def test_paper_testbed_matches_paper():
    spec = PAPER_TESTBED
    assert spec.cpu.cores == 4
    assert spec.cpu.frequency_hz == pytest.approx(2.4e9)
    assert spec.memory.capacity_bytes == pytest.approx(67e9)
    assert spec.nic.link_rate_bps == pytest.approx(40e9)
    assert "CX3" in spec.nic.model


def test_without_rdma_strips_bypass():
    plain = PAPER_TESTBED.without_rdma()
    assert not plain.nic.rdma_capable
    assert not plain.nic.dpdk_capable
    # The original is untouched (frozen dataclasses).
    assert PAPER_TESTBED.nic.rdma_capable


def test_wire_bytes_overhead():
    kernel = PAPER_TESTBED.kernel
    assert kernel.wire_bytes(0) == 0
    assert kernel.wire_bytes(100) == 100 + kernel.header_bytes
    two_packets = kernel.wire_bytes(kernel.mtu_bytes + 1)
    assert two_packets == kernel.mtu_bytes + 1 + 2 * kernel.header_bytes


def test_host_memcpy_uses_cpu(env):
    host = Host(env, "h1")

    def copy():
        yield from host.memcpy(1 << 20)

    env.process(copy())
    env.run()
    assert host.cpu.utilisation() > 0.9


def test_host_dma_uses_no_cpu(env):
    host = Host(env, "h1")

    def copy():
        yield from host.dma(1 << 20)

    env.process(copy())
    env.run()
    assert host.cpu.utilisation() == pytest.approx(0.0)


def test_vm_registration_and_colocation(env):
    h1 = Host(env, "h1")
    h2 = Host(env, "h2")
    vm1 = VirtualMachine(h1, "vm1")
    vm2 = VirtualMachine(h1, "vm2")
    vm3 = VirtualMachine(h2, "vm3")
    assert vm1 in h1.vms and vm2 in h1.vms
    assert vm1.same_machine(vm2)
    assert not vm1.same_machine(vm3)
    assert vm1.same_vm(vm1)
    assert not vm1.same_vm(vm2)


def test_vm_sriov_requires_rdma_nic(env):
    plain = Host(env, "h1", spec=PAPER_TESTBED.without_rdma())
    vm = VirtualMachine(plain, "vm1", VmSpec(sriov=True))
    assert not vm.sriov
    capable = Host(env, "h2")
    vm2 = VirtualMachine(capable, "vm2", VmSpec(sriov=True))
    assert vm2.sriov


def test_virtio_tax_costs_cpu_and_latency(env):
    host = Host(env, "h1")
    vm = VirtualMachine(host, "vm1", VmSpec(sriov=False))

    def taxed():
        yield from vm.virtio_tax(1 << 20, 16)
        return env.now

    process = env.process(taxed())
    elapsed = env.run(until=process)
    expected_cpu = host.cpu.seconds_for(vm.virtio_cost_cycles(1 << 20, 16))
    assert elapsed == pytest.approx(expected_cpu + vm.spec.virtio_latency_s)
    assert host.cpu.utilisation() > 0


def test_vm_on_wrong_host_rejected_by_container_model(env):
    from repro.cluster import ContainerSpec
    from repro.cluster.container import Container

    h1, h2 = Host(env, "h1"), Host(env, "h2")
    vm = VirtualMachine(h2, "vm1")
    with pytest.raises(ValueError):
        Container(ContainerSpec("c"), h1, vm)

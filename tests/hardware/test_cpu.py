"""Unit tests for the CPU model."""

import pytest

from repro.hardware import CpuSet, CpuSpec
from repro.sim import Environment


@pytest.fixture
def cpu(env):
    return CpuSet(env, CpuSpec(cores=2, frequency_hz=1e9))


def test_seconds_for_cycles(cpu):
    assert cpu.seconds_for(1e9) == pytest.approx(1.0)
    assert cpu.seconds_for(0) == 0


def test_execute_occupies_core_for_wall_time(env, cpu, runner):
    def work():
        yield from cpu.execute(2e9)  # 2 seconds at 1 GHz
        return env.now

    assert runner(work()) == pytest.approx(2.0)


def test_zero_cycles_is_free(env, cpu, runner):
    def work():
        yield from cpu.execute(0)
        return env.now

    assert runner(work()) == 0


def test_negative_cycles_rejected(env, cpu):
    def work():
        yield from cpu.execute(-1)

    process = env.process(work())
    with pytest.raises(ValueError):
        env.run(until=process)


def test_contention_queues_work(env, cpu):
    """3 jobs of 1s on 2 cores: last finishes at 2s."""
    finished = []

    def work(name):
        yield from cpu.execute(1e9)
        finished.append((env.now, name))

    for name in "abc":
        env.process(work(name))
    env.run()
    assert finished[-1][0] == pytest.approx(2.0)


def test_utilisation_accounting(env, cpu):
    def work():
        yield from cpu.execute(1e9)

    env.process(work())
    env.run()
    # 1 core busy for the whole (1 s) window => 100 %.
    assert cpu.utilisation_percent() == pytest.approx(100.0)


def test_utilisation_two_cores(env, cpu):
    def work():
        yield from cpu.execute(1e9)

    env.process(work())
    env.process(work())
    env.run()
    assert cpu.utilisation_percent() == pytest.approx(200.0)


def test_hold_occupies_wall_time(env, cpu, runner):
    def work():
        yield from cpu.hold(0.5)
        return env.now

    assert runner(work()) == pytest.approx(0.5)
    assert cpu.utilisation() == pytest.approx(1.0)


def test_dedicate_claims_core_forever(env, cpu):
    claim = cpu.dedicate()
    assert cpu.busy_cores == 1

    def work():
        yield from cpu.execute(1e9)

    env.process(work())
    env.run()
    # Dedicated core stayed busy during the 1s of work: 2 cores busy.
    assert cpu.utilisation() == pytest.approx(2.0)
    claim.release()
    assert cpu.busy_cores == 0


def test_dedicate_when_full_raises(env):
    cpu = CpuSet(env, CpuSpec(cores=1))
    cpu.dedicate()
    with pytest.raises(RuntimeError):
        cpu.dedicate()


def test_dedicate_release_idempotent(env, cpu):
    claim = cpu.dedicate()
    claim.release()
    claim.release()
    assert cpu.busy_cores == 0


def test_reset_accounting(env, cpu):
    def work():
        yield from cpu.execute(1e9)

    env.process(work())
    env.run()
    cpu.reset_accounting()
    env.timeout(1)
    env.run()
    assert cpu.utilisation() == pytest.approx(0.0)


def test_priority_preempts_queue_order(env):
    cpu = CpuSet(env, CpuSpec(cores=1, frequency_hz=1e9))
    order = []

    def work(name, priority):
        yield from cpu.execute(1e9, priority=priority)
        order.append(name)

    def submit():
        env.process(work("holder", 0))
        yield env.timeout(0.1)
        env.process(work("low", 5))
        env.process(work("high", -5))

    env.process(submit())
    env.run()
    assert order == ["holder", "high", "low"]

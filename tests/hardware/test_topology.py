"""Unit tests for the fat-tree topology and multi-path fabric."""

import pytest

from repro.errors import RoutingError
from repro.hardware import FatTreeFabric, FatTreeTopology, PhysicalNic
from repro.hardware.topology import FlowletTracer


# ---------------------------------------------------------------- topology


def test_fat_tree_shape_k4(env):
    topo = FatTreeTopology(env, k=4)
    assert len(topo.edges) == 4 and all(len(t) == 2 for t in topo.edges)
    assert len(topo.aggs) == 4 and all(len(t) == 2 for t in topo.aggs)
    assert len(topo.cores) == 4
    assert topo.host_capacity == 16
    links = topo.links()
    # 4 pods x (2 edge x 2 agg) cables + 4 cores x 4 pods cables,
    # two directed links per cable.
    assert len(links) == (4 * 4 + 4 * 4) * 2
    assert sum(1 for link in links if link.tier == "edge-agg") == 32
    assert sum(1 for link in links if link.tier == "agg-core") == 32


def test_fat_tree_rejects_bad_arity(env):
    with pytest.raises(ValueError):
        FatTreeTopology(env, k=3)
    with pytest.raises(ValueError):
        FatTreeTopology(env, k=0)
    with pytest.raises(ValueError):
        FatTreeTopology(env, k=4, core_rate_scale=0)


def test_core_wiring_one_agg_per_pod(env):
    """Core group g connects to agg index g in every pod."""
    topo = FatTreeTopology(env, k=4)
    for core in topo.cores:
        for pod in range(4):
            agg = topo.pod_aggs(pod)[core.group]
            assert topo.link(agg, core).up
            assert topo.link(core, agg).up
    for agg_row in topo.aggs:
        for agg in agg_row:
            assert [c.group for c in topo.agg_cores(agg)] == [agg.index] * 2


def test_edge_for_port_is_pod_major(env):
    topo = FatTreeTopology(env, k=4)
    assert topo.edge_for_port(0).name == "edge0.0"
    assert topo.edge_for_port(1).name == "edge0.0"
    assert topo.edge_for_port(2).name == "edge0.1"
    assert topo.edge_for_port(4).name == "edge1.0"
    assert topo.edge_for_port(15).name == "edge3.1"
    with pytest.raises(ValueError):
        topo.edge_for_port(16)


def test_fail_cable_downs_both_directions_and_bumps_version(env):
    topo = FatTreeTopology(env, k=4)
    version = topo.version
    pair = topo.fail_cable("agg0.0", "core0.0")
    assert all(not link.up for link in pair)
    assert len(topo.down_links()) == 2
    assert topo.version == version + 1
    topo.heal_cable("agg0.0", "core0.0")
    assert not topo.down_links()
    assert topo.version == version + 2
    with pytest.raises(ValueError):
        topo.fail_cable("agg0.0", "nope")


def test_tier_utilisation_keys(env):
    topo = FatTreeTopology(env, k=4)
    util = topo.tier_utilisation()
    assert set(util) == {"edge-agg", "agg-core"}
    assert all(value == 0.0 for value in util.values())
    assert len(topo.link_utilisation()) == 64


# ---------------------------------------------------------------- tracer


def test_flowlet_tracer_counts_inversions():
    tracer = FlowletTracer()
    tracer.observe(("f", 0, 0), 0)
    tracer.observe(("f", 0, 0), 1)
    tracer.observe(("f", 0, 0), 3)
    assert tracer.reorders == 0
    tracer.observe(("f", 0, 0), 2)
    assert tracer.reorders == 1
    assert tracer.violations == [(("f", 0, 0), 3, 2)]
    # A different flowlet key is a fresh sequence space.
    tracer.observe(("f", 1, 0), 0)
    assert tracer.reorders == 1


def test_flowlet_tracer_state_is_bounded():
    tracer = FlowletTracer()
    for i in range(tracer.MAX_FLOWLETS + 100):
        tracer.observe(("f", i, 0), 0)
    assert len(tracer._last_seq) <= tracer.MAX_FLOWLETS


# ---------------------------------------------------------------- fabric


def _tree(env, **kwargs):
    fabric = FatTreeFabric(env, k=4, **kwargs)
    nics = [PhysicalNic(env) for _ in range(6)]
    for nic in nics:
        fabric.attach(nic)
    return fabric, nics


def test_attach_assigns_ports_and_pods(env):
    fabric, nics = _tree(env)
    assert [fabric.port_of(nic) for nic in nics] == list(range(6))
    assert fabric.edge_of(nics[0]).name == "edge0.0"
    assert fabric.pod_of(nics[0]) == 0
    assert fabric.pod_of(nics[4]) == 1


def test_attach_rejects_overflow(env):
    fabric = FatTreeFabric(env, k=2)
    for _ in range(fabric.topology.host_capacity):
        fabric.attach(PhysicalNic(env))
    with pytest.raises(ValueError):
        fabric.attach(PhysicalNic(env))


def test_send_rejects_foreign_and_loopback(env):
    fabric, nics = _tree(env)
    other = PhysicalNic(env)
    with pytest.raises(ValueError):
        next(fabric.send(nics[0], other, 1, lambda: None))
    with pytest.raises(ValueError):
        next(fabric.send(nics[0], nics[0], 1, lambda: None))


def test_interpod_transfer_matches_closed_form(env):
    fabric, nics = _tree(env)
    src, dst = nics[0], nics[4]  # pod0 -> pod1: four hops
    done = []

    def go():
        yield from fabric.send(src, dst, 64 * 1024, lambda: done.append(env.now))

    env.process(go())
    env.run()
    rate = src.spec.goodput_bytes
    assert done == [pytest.approx(fabric.path_latency(64 * 1024, rate))]


def test_cross_pod_conservation_and_order(env):
    fabric, nics = _tree(env)
    delivered = []

    def stream(src, dst, count, tag):
        def go():
            for i in range(count):
                yield from fabric.send(
                    src, dst, 4096, lambda i=i: delivered.append((tag, i))
                )
        env.process(go())

    stream(nics[0], nics[4], 20, "a")
    stream(nics[1], nics[5], 20, "b")
    env.run()
    assert len(delivered) == 40
    for tag in ("a", "b"):
        seqs = [i for t, i in delivered if t == tag]
        assert seqs == sorted(seqs)
    assert fabric.reorders() == 0
    assert fabric.tracer.checked == 40


def test_core_failure_reroutes_and_conserves(env):
    fabric, nics = _tree(env)
    src, dst = nics[0], nics[4]
    delivered = []

    def burst(count):
        def go():
            for i in range(count):
                yield from fabric.send(
                    src, dst, 4096, lambda: delivered.append(env.now)
                )
        return env.process(go())

    env.run(until=burst(10))
    busy = fabric.busiest_core_link()
    assert busy.pipe.bytes_moved > 0
    fabric.fail_link(busy.src.name, busy.dst.name)
    # A frame already on the wire finishes its hop; once the fabric
    # quiesces the dead link is byte-frozen.
    env.run()
    frozen = busy.pipe.bytes_moved
    env.run(until=burst(10))
    env.run()
    assert len(delivered) == 20
    assert busy.pipe.bytes_moved == frozen
    assert fabric.reorders() == 0
    fabric.heal_link(busy.src.name, busy.dst.name)
    assert not fabric.topology.down_links()


def test_fail_link_mid_flight_detours_queued_traffic(env):
    fabric, nics = _tree(env)
    src, dst = nics[0], nics[4]
    delivered = []

    def sender():
        for _ in range(5):
            yield from fabric.send(
                src, dst, 64 * 1024, lambda: delivered.append(env.now)
            )

    def killer():
        # Land the cut while messages are queued inside the tree.
        yield env.timeout(20e-6)
        busy = fabric.busiest_core_link()
        fabric.fail_link(busy.src.name, busy.dst.name)

    env.process(sender())
    env.process(killer())
    env.run()
    assert len(delivered) == 5
    assert fabric.reorders() == 0


def test_no_alive_path_raises(env):
    fabric = FatTreeFabric(env, k=2)
    a, b = PhysicalNic(env), PhysicalNic(env)
    fabric.attach(a)
    fabric.attach(b)
    # k=2: one edge per pod, one agg per pod, one core.
    fabric.fail_link("edge0.0", "agg0.0")

    def go():
        yield from fabric.send(a, b, 4096, lambda: None)

    env.process(go())
    with pytest.raises(RoutingError):
        env.run()


def test_partition_parks_until_heal(env):
    fabric, nics = _tree(env)
    src, dst = nics[0], nics[4]
    fabric.partition([src], [dst])
    delivered = []

    def go():
        yield from fabric.send(src, dst, 4096, lambda: delivered.append(env.now))

    env.process(go())
    env.run()
    assert not delivered

    def mend():
        yield env.timeout(1e-3)
        fabric.heal()

    env.process(mend())
    env.run()
    assert len(delivered) == 1
    assert delivered[0] >= 1e-3


def test_quickstart_fat_tree_cluster():
    from repro import quickstart_cluster

    env, cluster, network = quickstart_cluster(hosts=5, fat_tree_k=4)
    fabric = cluster.host("host0").nic.fabric
    assert isinstance(fabric, FatTreeFabric)
    assert fabric.pod_of(cluster.host("host4").nic) == 1
